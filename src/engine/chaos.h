// Seeded chaos harness for the failure & churn subsystem (DESIGN.md §10).
//
// A FaultInjector replays a deterministic event schedule — node crashes,
// processing failures, link flaps, restores and stream-rate spikes —
// against a live Middleware. After EVERY event the harness re-validates
// every active deployment with verify::validate (structural + placement
// checks for untouched deployments; full semantic + cost checks for the
// ones the event just re-planned) and records a digest line, so a fixed
// seed yields a bitwise-identical transcript regardless of the planner
// thread count (the PR-2 determinism contract extended to churn).
//
// `run_churn` drives a complete scenario: deploy a workload, replay the
// schedule, then restore everything still down and adapt until quiescent.
// The report asserts the convergence invariants the chaos tests (and the
// differential fuzzer's --churn mode) check:
//   * zero validator violations across the whole run;
//   * every suspended query resumed after full restoration;
//   * the churned system's total cost lands within a configurable factor
//     of a fresh Middleware optimizing the same end-state from scratch.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/middleware.h"

namespace iflow::engine {

struct ChaosConfig {
  /// Events to replay (the chaos tests use >= 30 per scenario).
  int events = 32;
  /// Concurrently down nodes (crashed or processing-failed). The injector
  /// additionally never takes down more than half the network, so the
  /// hierarchy always keeps members.
  int max_down_nodes = 2;
  /// Concurrently administratively-down link pairs.
  int max_down_links = 3;
  /// Probability of drawing a restore when something is down (biases
  /// schedules toward churn rather than monotone destruction).
  double restore_bias = 0.45;
  /// Probability of a rate-spike event (scales a random stream's rate by a
  /// factor in [0.25, 4] and runs adapt()).
  double spike_probability = 0.15;
  /// Probability of a set-link-loss event (a random link pair's loss
  /// probability is re-drawn in [0, max_link_loss]). Loss does not affect
  /// planning costs; it exercises the engine's reliable delivery layer via
  /// the post-churn delivery check.
  double loss_probability = 0.0;
  /// Probability of a set-link-jitter event (delay jitter re-drawn in
  /// [0, max_jitter_ms]).
  double jitter_probability = 0.0;
  /// Probability of a queue-pressure event: the post-churn delivery check
  /// runs with bounded per-operator queues (kBackpressure) and the drawn
  /// per-tuple service time, so retransmission interacts with queueing.
  double queue_probability = 0.0;
  /// Probability of a gray-failure event: a node or link degrades — slow,
  /// lossy or flapping while staying administratively up — or, restore-
  /// biased, an existing degradation heals. Quality-only mutations: routing
  /// and planning costs are untouched (the incremental sync is free); the
  /// reliable delivery layer feels them. The restoration sweep heals every
  /// degradation before the delivery twins and the fresh baseline run.
  double gray_probability = 0.0;
  /// Concurrently degraded elements (nodes plus link pairs).
  int max_degraded = 2;
  /// Upper bounds of drawn degradations: delay multiplier, extra loss
  /// probability, and flap frequency (Hz of the on/off square wave).
  double max_gray_slowdown = 3.0;
  double max_gray_loss = 0.3;
  double max_gray_flap_hz = 0.5;
  /// Upper bound of drawn per-link loss probabilities. Kept well under the
  /// default retry budget's tolerance (12 retries at <= 5% per-hop loss
  /// makes residual loss negligible over a bounded run).
  double max_link_loss = 0.04;
  /// Upper bound of drawn per-link delay jitter (must stay far below the
  /// engine's lateness allowance so event-time results are unaffected).
  double max_jitter_ms = 2.0;
  /// Run the post-churn delivery contract: deploy the surviving actives
  /// into two reliable-mode simulations — one over the churned network
  /// (with its accumulated loss/jitter), one over a loss-free copy — and
  /// require per-query delivered counts to match exactly with zero tuples
  /// lost after retries (at-least-once + dedup = effectively exactly-once).
  bool delivery_check = false;
  /// Horizon of the delivery-check simulations (must exceed the engine's
  /// default drain window).
  double delivery_duration_s = 20.0;
  /// Optional time-varying source rates for the delivery-check simulations
  /// (scenario rate curves): multiplier on a stream's catalog rate at
  /// simulation time t. Must be a pure function — the digest stays bitwise
  /// stable because both the lossy and the loss-free twin see it. Null =
  /// constant catalog rates.
  std::function<double(query::StreamId, double)> rate_modulation;
  /// Planner threads pinned on the middleware workspace (determinism
  /// checks run the same seed at 1 and N and diff the digests).
  int threads = 1;
  /// Post-churn total cost must be <= this factor times a fresh
  /// optimization of the same end state (and vice versa).
  double convergence_factor = 2.0;
  /// Drift threshold handed to the Middleware under test.
  double drift_threshold = 1.2;
};

enum class ChaosEventKind : std::uint8_t {
  kCrashNode,    // node stops forwarding; incident links die with it
  kFailNode,     // processing service dies; node keeps forwarding
  kRestoreNode,  // recovers from either failure class
  kFailLink,     // administrative link-pair failure (possible partition)
  kRestoreLink,
  kRateSpike,      // stream rate scaled; adapt() re-plans drifted queries
  kSetLinkLoss,    // link loss probability re-drawn (delivery layer)
  kSetLinkJitter,  // link delay jitter re-drawn (delivery layer)
  kQueuePressure,  // delivery check runs with bounded queues + service time
  kDegradeNode,    // gray failure: node slow/lossy/flapping, still up
  kDegradeLink,    // gray failure on every parallel (a, b) link
  kClearNode,      // node degradation heals
  kClearLink,      // link degradation heals
};

const char* to_string(ChaosEventKind k);

struct ChaosEvent {
  ChaosEventKind kind = ChaosEventKind::kCrashNode;
  net::NodeId a = net::kInvalidNode;   // node, or link end
  net::NodeId b = net::kInvalidNode;   // other link end (links only)
  query::StreamId stream = query::kInvalidStream;  // rate spikes only
  /// Overloaded by kind: new tuple rate (kRateSpike), loss probability
  /// (kSetLinkLoss), jitter in ms (kSetLinkJitter), per-tuple service time
  /// in seconds (kQueuePressure), extra loss probability (kDegrade*).
  double rate = 0.0;
  /// Gray-failure degradation (kDegrade* only): delay multiplier and flap
  /// frequency; `rate` doubles as the degradation's extra loss.
  double slowdown = 1.0;
  double flap_hz = 0.0;
};

/// One replayed event plus the system state it left behind.
struct ChaosStep {
  ChaosEvent event;
  std::vector<Redeployment> redeployments;
  std::size_t active = 0;
  std::size_t suspended = 0;
  double total_cost = 0.0;     // finite: only intact actives are summed
  std::size_t violations = 0;  // validator violations after this event
  std::string violation_detail;  // first violation of this step, if any
};

struct ChaosReport {
  std::vector<ChaosStep> steps;
  std::size_t violations = 0;        // summed over steps + final sweep
  std::string violation_detail;      // first violation description, if any
  bool all_resumed = false;          // every query active after restoration
  bool converged = false;            // cost within convergence_factor
  double final_cost = 0.0;           // churned middleware, post-restore
  double fresh_cost = 0.0;           // fresh middleware on the end state
  /// Modeled planning latency of the initial workload deployment (summed
  /// OptimizeResult::deploy_time_ms over the first deploy sweep).
  double deploy_time_ms = 0.0;
  /// Post-churn delivery contract (only when cfg.delivery_check).
  bool delivery_checked = false;   // both sims deployed + ran to completion
  bool delivery_ok = false;        // per-query lossy == loss-free, 0 lost
  std::uint64_t delivered_total = 0;    // lossy run, summed over queries
  std::uint64_t retransmits_total = 0;  // retransmissions the loss forced
  std::uint64_t duplicates_total = 0;   // duplicates the dedup suppressed
  /// Mean per-query availability of the lossy run (delivered rate over the
  /// analytic no-fault rate at the *base* catalog rates; rate-modulated
  /// scenarios legitimately land away from 1.0).
  double mean_availability = 0.0;
  /// Aggregate delivered results per second of the lossy run.
  double goodput_tps = 0.0;
  /// One line per step (event + hexfloat cost + counts); bitwise-identical
  /// across planner thread counts for a fixed seed.
  std::string digest;
};

/// Draws valid events against the injector's model of what is currently
/// down: it never double-fails a target, only restores things that are
/// down, respects the concurrency caps and never empties the hierarchy.
/// Deterministic for a fixed (network shape, config, seed).
class FaultInjector {
 public:
  FaultInjector(const net::Network& net, const query::Catalog& catalog,
                const ChaosConfig& cfg, std::uint64_t seed);

  /// Next event of the schedule. Always returns an applicable event.
  ChaosEvent next();

  const std::vector<net::NodeId>& down_nodes() const { return down_nodes_; }
  const std::vector<std::pair<net::NodeId, net::NodeId>>& down_links() const {
    return down_links_;
  }

 private:
  ChaosConfig cfg_;
  Prng prng_;
  std::size_t node_count_;
  std::vector<std::pair<net::NodeId, net::NodeId>> link_pairs_;  // distinct
  std::vector<query::StreamId> streams_;
  std::vector<double> base_rates_;
  std::vector<net::NodeId> down_nodes_;
  std::vector<std::pair<net::NodeId, net::NodeId>> down_links_;
  std::vector<net::NodeId> degraded_nodes_;
  std::vector<std::pair<net::NodeId, net::NodeId>> degraded_links_;
};

/// Replays `cfg.events` injector-drawn events against a Middleware built
/// over copies of `net`/`catalog`, validating after every event, then
/// restores everything and checks convergence (see ChaosReport). The
/// copies keep the caller's instances pristine for replay comparisons.
ChaosReport run_churn(net::Network net, query::Catalog catalog,
                      const std::vector<query::Query>& queries, int max_cs,
                      Algorithm algorithm, std::uint64_t seed,
                      const ChaosConfig& cfg = {});

/// Replays a FIXED event script (scenario failure scripts: correlated
/// whole-cluster outages, flapping regions, loss storms) instead of
/// injector-drawn events; cfg.events is ignored — the whole script runs.
/// The script must be applicable in order: no double-faulting a down
/// target, no restoring something that is up (the scenario generator
/// guarantees this; violations throw). Everything else — per-event
/// validation, the restoration sweep, convergence and the optional
/// delivery contract — matches run_churn.
ChaosReport run_scripted(net::Network net, query::Catalog catalog,
                         const std::vector<query::Query>& queries, int max_cs,
                         Algorithm algorithm, std::uint64_t seed,
                         const std::vector<ChaosEvent>& script,
                         const ChaosConfig& cfg = {});

// ---------------------------------------------------------------------------
// Registration churn: the multi-tenant churn plane (DESIGN.md §14).
//
// Where run_churn holds the query population fixed and churns the NETWORK,
// run_registration_churn holds the network mostly steady and churns the
// QUERY POPULATION: queries from a fixed pool register (through admission
// control) and unregister continuously, interleaved with a low rate of
// faults, restores, rate spikes and quota changes. After every event the
// harness validates all actives, checks that no admitted deployment left a
// node or link over its capacity budget, and appends a digest line; on a
// cadence it runs the dirty-region settle pass. The report asserts the
// churn-plane invariants the churn tests (and the differential fuzzer's
// --register-churn mode) check:
//   * zero validator violations and zero capacity violations;
//   * settle parity: a terminal reoptimize() improves the settled total
//     cost by at most `parity_slack`;
//   * bounded retries: exponential backoff keeps total resume failures
//     under (restores + 1) * max_resume_attempts * pool size.
// ---------------------------------------------------------------------------

enum class RegistrationEventKind : std::uint8_t {
  kRegister,     // deploy a pool query through admission control
  kUnregister,   // tear down an in-system query (with dependent repair)
  kSetQuota,     // replace one tenant's quota (affects future admissions)
  kFailNode,     // processing failure; node keeps forwarding
  kRestoreNode,
  kFailLink,     // administrative link-pair failure
  kRestoreLink,
  kRateSpike,    // stream rate re-drawn; adapt() re-plans drifted queries
};

const char* to_string(RegistrationEventKind k);

struct RegistrationEvent {
  RegistrationEventKind kind = RegistrationEventKind::kRegister;
  std::size_t query = 0;     // pool index (register / unregister)
  std::uint32_t tenant = 0;  // kSetQuota
  TenantQuota quota;         // kSetQuota
  net::NodeId a = net::kInvalidNode;               // faults / restores
  net::NodeId b = net::kInvalidNode;               // link events
  query::StreamId stream = query::kInvalidStream;  // rate spikes
  double rate = 0.0;                               // new tuple rate
};

struct RegistrationChurnConfig {
  /// Injector-drawn events to replay (scripted runs replay the whole
  /// script and ignore this).
  int events = 48;
  /// P(unregister) when both a register and an unregister are possible.
  double unregister_bias = 0.35;
  /// Probability of a fault/restore event instead of population churn.
  double fault_probability = 0.08;
  /// P(restore | something is down) within the fault branch.
  double restore_bias = 0.5;
  /// Probability of a rate-spike event (rate re-drawn in [0.25, 4] x base).
  double spike_probability = 0.08;
  /// Probability of a quota-change event (random pool tenant's weight and
  /// query cap re-drawn). Default off: quota churn is opt-in.
  double quota_probability = 0.0;
  int max_down_nodes = 1;
  int max_down_links = 1;
  /// Run the dirty-region settle pass every N events (0 = only at the end).
  int settle_every = 6;
  /// Admission budgets handed to the middleware (<= 0 = unlimited; see
  /// AdmissionConfig). Link capacity stays opt-in.
  double node_capacity = 0.0;
  double link_utilization_cap = 0.0;
  /// Initial per-tenant quotas.
  std::vector<std::pair<std::uint32_t, TenantQuota>> quotas;
  /// Planner threads (determinism checks diff digests across counts).
  int threads = 1;
  double drift_threshold = 1.2;
  /// Settle parity: the terminal reoptimize() may improve the settled
  /// total cost by at most this fraction.
  double parity_slack = 0.05;
};

struct RegistrationChurnReport {
  std::size_t registrations = 0;  // register events that entered the system
  std::size_t admitted = 0;       // of those, priced kAdmit (or unpriced)
  std::size_t degraded = 0;       // admitted only after a host-excluded replan
  std::size_t parked = 0;         // entered the suspended queue (endpoints down)
  std::size_t rejections = 0;     // Outcome::kRejected (priced reason, no park)
  std::size_t unregistrations = 0;
  std::size_t reuse_deployments = 0;  // admitted plans consuming >=1 derived unit
  std::string first_rejection;        // sample priced rejection reason
  /// Dirty-region settle accounting, summed over all settle passes.
  std::size_t settles = 0;
  std::size_t settle_replans = 0;
  std::size_t settle_moves = 0;
  /// Actives at each settle pass, summed: settle_replans / settle_actives
  /// is the replanned fraction the churn-plane criterion bounds (< 25%).
  std::size_t settle_actives = 0;
  std::size_t violations = 0;  // validator violations across the whole run
  std::string violation_detail;
  /// Admitted registrations that left a node over node_capacity or a link
  /// over its bandwidth headroom (must be zero: admission is a guarantee).
  std::size_t capacity_violations = 0;
  /// Modeled planning latency summed over admitted registrations.
  double deploy_time_ms = 0.0;
  double final_cost = 0.0;  // after drain + final settle
  double reopt_cost = 0.0;  // after the terminal reoptimize()
  bool parity_ok = false;   // reopt_cost >= final_cost * (1 - parity_slack)
  std::uint64_t resume_failures = 0;
  bool backoff_bounded = false;
  /// All invariants hold: no violations, no capacity breaches, parity,
  /// bounded backoff.
  bool ok = false;
  /// One line per event (+ settle lines); bitwise-identical across planner
  /// thread counts for a fixed seed.
  std::string digest;
};

/// Replays `cfg.events` injector-drawn registration-churn events over a
/// query pool against a Middleware built over copies of `net`/`catalog`.
/// Pool queries must have distinct ids; an unregistered query may register
/// again later (including after a rejection).
RegistrationChurnReport run_registration_churn(
    net::Network net, query::Catalog catalog,
    const std::vector<query::Query>& pool, int max_cs, Algorithm algorithm,
    std::uint64_t seed, const RegistrationChurnConfig& cfg = {});

/// Replays a FIXED registration script (see workload::make_churn_script).
/// Register/unregister events that are inapplicable because an earlier
/// register was rejected by admission are skipped (scripts cannot predict
/// admission outcomes); fault events must be applicable in order, exactly
/// as in run_scripted.
RegistrationChurnReport run_registration_script(
    net::Network net, query::Catalog catalog,
    const std::vector<query::Query>& pool, int max_cs, Algorithm algorithm,
    std::uint64_t seed, const std::vector<RegistrationEvent>& script,
    const RegistrationChurnConfig& cfg = {});

// ---------------------------------------------------------------------------
// Checkpoint/recovery contract (stateful checkpoint plane, DESIGN.md §16).
// ---------------------------------------------------------------------------

/// One seeded recovery episode (see run_recovery).
struct RecoveryConfig {
  /// Control-plane churn events (crash/restore/quarantine/release pairs)
  /// replayed through the middleware before the data-plane phase, so the
  /// faulted simulation also exercises state-preserving migration: every
  /// operator move the planner performed becomes a kMigrateOps fault.
  int events = 6;
  /// Emission window of the data-plane simulations; drain_s of settle time
  /// (sources quiet, retry chains complete) is added on top.
  double duration_s = 60.0;
  double drain_s = 20.0;
  /// Barrier period of the checkpoint plane in the faulted run.
  double checkpoint_interval_s = 5.0;
  /// Snapshot-store replicas (byte accounting).
  int replicas = 2;
  /// Mid-stream crash window [crash_at_s, crash_at_s + crash_len_s) on a
  /// deterministically chosen operator-hosting non-source node. The window
  /// must stay well under the retry chain (~15 s at the defaults below) so
  /// in-flight tuples survive on the retry budget.
  double crash_at_s = 18.0;
  double crash_len_s = 5.0;
  /// When the recorded planner migrations are injected into the faulted run.
  double migrate_at_s = 32.0;
  /// Planner threads (digests must be bitwise-stable across counts).
  int threads = 1;
  /// Reliability knobs of the data-plane simulations.
  double ack_timeout_s = 0.05;
  double max_backoff_s = 2.0;
};

struct RecoveryReport {
  /// Headline contract: the faulted run (mid-stream crash + recovery +
  /// planner-recorded migrations, checkpoints on) delivered per-query
  /// result counts identical to the fault-free twin under the same engine
  /// seed, with zero tuples lost after retries.
  bool counts_match = false;
  /// Teeth: the same faults with snapshots OFF and volatile operator state
  /// lose results (fewer delivered than the twin) — proving the snapshot
  /// plane, not slack in the workload, is what preserves the counts.
  bool loss_without_snapshots = false;
  /// counts_match && faulted_lost == 0 && loss_without_snapshots &&
  /// violations == 0 && epochs_committed >= 1.
  bool contract_ok = false;
  std::size_t events = 0;      // control-plane events replayed
  std::size_t migrations = 0;  // recorded state migrations (warm handoffs)
  std::size_t violations = 0;  // validator violations across the run
  std::string violation_detail;
  std::uint64_t twin_delivered = 0;
  std::uint64_t faulted_delivered = 0;
  std::uint64_t volatile_delivered = 0;  // snapshots off, volatile state
  std::uint64_t faulted_lost = 0;
  /// Checkpoint-plane overhead accounting (faulted run).
  std::int64_t epochs_committed = 0;
  double snapshot_bytes_total = 0.0;
  double snapshot_bytes_max = 0.0;
  double barrier_latency_mean_s = 0.0;
  double barrier_latency_max_s = 0.0;
  std::size_t retained_high_water = 0;
  std::size_t seen_high_water = 0;
  double recovery_latency_s = 0.0;  // max rollback depth across recoveries
  /// Control-plane event lines + per-query delivery lines (hexfloat);
  /// bitwise-identical across planner thread counts for a fixed seed.
  std::string digest;
};

/// Runs the checkpoint/recovery contract over copies of `net`/`catalog`:
/// deploys the workload, replays a control-plane churn phase (crash /
/// restore / quarantine / release, recording the planner's warm state
/// migrations), then drives three reliable-mode simulations of the settled
/// deployment under one engine seed — a fault-free twin, a faulted run with
/// coordinated snapshots (mid-stream crash + rollback recovery + the
/// recorded migrations as kMigrateOps), and a faulted run with snapshots
/// off and volatile operator state (the teeth). Throws (IFLOW_CHECK) when
/// the deployed workload hosts no operator on a crashable non-source node.
RecoveryReport run_recovery(net::Network net, query::Catalog catalog,
                            const std::vector<query::Query>& queries,
                            int max_cs, Algorithm algorithm,
                            std::uint64_t seed, const RecoveryConfig& cfg = {});

}  // namespace iflow::engine
