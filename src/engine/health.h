// Gray-failure health plane (DESIGN.md §15).
//
// Binary fault handling (fail/crash/restore, DESIGN.md §10) cannot see the
// failures that cost real deployments the most availability: elements that
// are slow, lossy or flapping but never declared dead. The Σ rate×path-cost
// placement happily routes hot operator chains straight through them. This
// header closes that gap with a seeded, deterministic φ-accrual-style
// failure detector fed entirely by the reliable data plane's existing
// telemetry (per-channel ack RTT samples against the clean-network
// expectation, retransmit counts, queue depths — see ChannelTelemetry), a
// healthy → suspect → quarantined → probation lifecycle with hysteresis,
// and a detection-contract harness (run_gray) that proves the loop closes:
// detector-on runs must beat detector-off goodput under seeded gray
// failures while never quarantining anything in a healthy twin run.
//
// Node attribution is exonerate-then-cover (boolean network tomography):
// a clean channel exonerates every node on its path for the epoch (a sick
// node would have corrupted that channel too), and the sick channels are
// then explained greedily — the non-exonerated node crossing the most
// still-unexplained sick channels absorbs their signal, repeatedly. The
// greedy step matters in hub-shaped topologies where EVERY channel crosses
// the degraded relay: naive min-over-crossing-channels gives the hub the
// LOWEST suspicion there (its min ranges over all channels) and blames the
// innocent endpoints instead. Links keep the simple min-over-crossing rule
// (their suspicion is advisory; quarantine acts on nodes). In a fully
// clean run every signal is exactly zero — measured RTT equals the stored
// expectation bit for bit, and no retransmissions fire under
// topology-sized timeouts — which is the zero-false-positive foundation.
//
// Quarantined elements carry no channels, so the detector re-admits them by
// active probing: seeded Bernoulli probes evaluated against the network's
// CURRENT degradation state (a probe of a healed element always succeeds, a
// flapping element fails whenever a probe lands in the down half of its
// wave). An element leaves quarantine for probation after one fully clean
// probe epoch and returns to healthy only after `probe_budget` consecutive
// clean probes; any dirty probe sends it straight back to quarantine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/prng.h"
#include "engine/middleware.h"

namespace iflow::engine {

enum class HealthState : std::uint8_t {
  kHealthy,
  kSuspect,      // suspicion crossed phi_suspect; still placeable
  kQuarantined,  // excluded from hosting; probed for recovery
  kProbation,    // probes clean so far; still excluded until the budget
};

const char* to_string(HealthState s);

struct HealthConfig {
  /// Suspicion thresholds: healthy → suspect at phi_suspect, suspect →
  /// quarantined after `confirm_epochs` consecutive epochs at or above
  /// phi_quarantine. The band between the two thresholds is hysteresis: a
  /// flapping element parked there neither confirms nor clears.
  double phi_suspect = 0.8;
  double phi_quarantine = 2.0;
  int confirm_epochs = 2;
  /// Suspect → healthy after this many consecutive epochs below
  /// phi_suspect.
  int clear_epochs = 2;
  /// Probation: probes per epoch, and the consecutive-clean-probe budget an
  /// element must survive before re-admission.
  int probes_per_epoch = 2;
  int probe_budget = 4;
  /// Signal floors: retransmit ratio and RTT inflation below these are
  /// treated as zero (clean runs sit exactly at 0 and 1 respectively; the
  /// floors are pure slack).
  double retransmit_floor = 0.05;
  double rtt_inflation_floor = 1.5;
  /// Queue depths above this contribute one unit of signal (sized against
  /// the reliability window, default 64).
  std::size_t queue_floor = 48;
  /// Per-epoch signal cap and the φ accrual decay:
  /// phi ← phi·decay + signal (so a steady signal s accrues toward
  /// s / (1 - decay), and silence halves suspicion every epoch).
  double signal_cap = 4.0;
  double decay = 0.5;
  /// Pricing penalty: pen = min(penalty_max, 1 + phi·penalty_scale) for
  /// suspect elements, penalty_max while quarantined or on probation.
  double penalty_scale = 2.0;
  double penalty_max = 8.0;
};

struct HealthTransition {
  net::NodeId node = net::kInvalidNode;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
};

/// Seeded, deterministic φ-accrual-style failure detector over the
/// reliable data plane's telemetry. Call observe() with each epoch's
/// ChannelTelemetry, then step() once per epoch to accrue suspicion, probe
/// quarantined elements and advance the lifecycle. Everything is a pure
/// function of (seed, observations, network degradation state), so two
/// monitors fed the same run agree bitwise.
class HealthMonitor {
 public:
  HealthMonitor(std::size_t node_count, const HealthConfig& cfg,
                std::uint64_t seed);

  /// Accumulates one epoch's channel telemetry. Callable any number of
  /// times between step()s; each batch runs exonerate-then-cover node
  /// attribution (see file comment) and blamed nodes keep the maximum over
  /// batches. Channels that sent nothing, or never left their node,
  /// observe nothing.
  void observe(const std::vector<ChannelTelemetry>& telemetry);

  /// Closes the epoch: φ accrual + decay, seeded probes of quarantined and
  /// probation elements against `net`'s current degradation state
  /// (evaluated at probe times inside the epoch ending at `now`), and
  /// lifecycle moves. Returns the transitions, in node order.
  std::vector<HealthTransition> step(const net::Network& net, double now,
                                     double epoch_s);

  HealthState state(net::NodeId n) const;
  double phi(net::NodeId n) const;

  /// Nodes currently excluded from placement: quarantined or on probation
  /// (probation re-admits only after the probe budget). Sorted.
  std::vector<net::NodeId> quarantined() const;

  /// Restore/release hook: clears node `n`'s accrued suspicion, streaks and
  /// epoch accumulators and drops every link-suspicion entry touching it.
  /// Without this, φ accrued before a restore_node/release_quarantine leaks
  /// into the recovered element's probation window as stale suspicion —
  /// the telemetry that produced it described hardware that was replaced.
  void on_restore(net::NodeId n);

  /// Multiplicative per-node pricing penalty (>= 1 each, healthy = 1) for
  /// Middleware::set_health_penalty / OptimizerEnv::node_penalty.
  std::vector<double> node_penalty() const;

  /// Healthy → quarantined entries since construction (the false-positive
  /// counter of the detection contract's healthy twin).
  std::uint64_t quarantines_total() const { return quarantines_total_; }

  /// Per-link suspicion, for observability and tests: same accrual as
  /// nodes, keyed by the (min, max) endpoint pair of observed hops. Links
  /// have no quarantine lifecycle — a link-only degradation cannot be
  /// routed around by re-placement (degradations never change routes), so
  /// it surfaces through pricing and through its endpoints' signals.
  struct LinkSuspicion {
    net::NodeId a = net::kInvalidNode;
    net::NodeId b = net::kInvalidNode;
    double phi = 0.0;
  };
  std::vector<LinkSuspicion> link_suspicion() const;

 private:
  struct ElementHealth {
    HealthState state = HealthState::kHealthy;
    double phi = 0.0;
    int confirm_streak = 0;  // consecutive epochs >= phi_quarantine
    int clean_streak = 0;    // consecutive epochs < phi_suspect
    int probe_streak = 0;    // consecutive clean probes
  };

  double channel_signal(const ChannelTelemetry& t) const;
  bool probe_clean(const net::Network& net, net::NodeId n, double t,
                   Prng& prng) const;

  HealthConfig cfg_;
  std::uint64_t seed_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t quarantines_total_ = 0;
  std::vector<ElementHealth> nodes_;
  // Per-epoch accumulators, reset by step().
  std::vector<double> node_signal_;
  std::vector<char> node_observed_;
  // Link suspicion, deterministic iteration order.
  std::map<std::pair<net::NodeId, net::NodeId>, double> link_phi_;
  std::map<std::pair<net::NodeId, net::NodeId>, double> link_signal_;
};

// ---------------------------------------------------------------------------
// Detection-contract harness.

/// One seeded gray-failure episode (see run_gray).
struct GrayConfig {
  /// Epochs per run and the telemetry window each one simulates.
  int epochs = 6;
  double epoch_s = 12.0;
  /// Operator-hosting nodes to degrade (chosen deterministically among stub
  /// hosts that are no query's source or sink, so quarantine + migration
  /// can actually take their traffic off them).
  int targets = 1;
  /// Default gray intensity: slow and heavily lossy, not flapping.
  net::Degradation degradation{3.0, 0.6, 0.0};
  HealthConfig health;
  /// Reliability knobs sized to multi-hop topologies (the 50 ms default
  /// would retransmit spuriously and poison the zero-FP contract).
  double ack_timeout_s = 1.0;
  double max_backoff_s = 4.0;
  /// Planner threads (digests must not depend on this).
  int threads = 1;
};

struct GrayReport {
  /// Degraded nodes (same targets in every sub-run).
  std::vector<net::NodeId> targets;
  /// Final-epoch aggregate goodput of the three sub-runs: detector on,
  /// detector off (same degradations, no health plane), and the healthy
  /// twin (detector on, nothing degraded).
  double goodput_on = 0.0;
  double goodput_off = 0.0;
  double goodput_healthy = 0.0;
  double recovery_ratio = 0.0;  // goodput_on / goodput_off
  /// First epoch (0-based) the detector quarantined anything; -1 = never.
  int detection_epoch = -1;
  std::size_t quarantined = 0;       // detector-on run, at the end
  std::size_t false_positives = 0;   // healthy-twin quarantine entries
  std::size_t violations = 0;        // validator violations across sub-runs
  std::string violation_detail;      // first violation, for diagnostics
  /// Detection contract: recovery_ratio >= 1.5, zero false positives, zero
  /// violations, and the degradation was detected at all.
  bool contract_ok = false;
  /// Per-epoch digest lines of all three sub-runs (hexfloat goodput);
  /// bitwise-stable across planner thread counts.
  std::string digest;
};

/// Runs the seeded gray-failure detection contract over copies of
/// `net`/`catalog`: deploys the workload, degrades deterministically chosen
/// operator-hosting stub nodes, and drives epoch-by-epoch reliable
/// simulations three times — detector on, detector off, and a healthy
/// baseline twin — wiring HealthMonitor transitions into Middleware
/// quarantine/penalty/release. Throws (IFLOW_CHECK) when the deployed
/// workload offers no degradable operator host.
GrayReport run_gray(const net::Network& net, const query::Catalog& catalog,
                    const std::vector<query::Query>& queries, int max_cs,
                    Algorithm algorithm, std::uint64_t seed,
                    const GrayConfig& cfg = {});

}  // namespace iflow::engine
