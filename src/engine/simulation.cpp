#include "engine/simulation.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace iflow::engine {

namespace {

std::string producer_key(const std::vector<query::StreamId>& streams,
                         net::NodeId node) {
  std::string key = std::to_string(node) + ":";
  for (auto s : streams) key += std::to_string(s) + ",";
  return key;
}

std::uint64_t link_key(net::NodeId a, net::NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

Simulation::Simulation(const net::Network& net, const net::RoutingTables& rt,
                       const query::Catalog& catalog, const EngineConfig& cfg,
                       std::uint64_t seed)
    : net_(&net),
      rt_(&rt),
      catalog_(&catalog),
      cfg_(cfg),
      prng_(seed),
      net_prng_(seed ^ 0xAC4DE11FE55ULL) {
  IFLOW_CHECK(cfg.duration_s > 0.0);
  IFLOW_CHECK(cfg.window_s > 0.0);
  if (cfg.reliability.enabled) {
    const ReliabilityConfig& r = cfg.reliability;
    IFLOW_CHECK_MSG(cfg.duration_s > r.drain_s,
                    "duration must exceed the drain window");
    IFLOW_CHECK(r.ack_timeout_s > 0.0 && r.backoff_factor >= 1.0);
    IFLOW_CHECK(r.max_backoff_s >= r.ack_timeout_s);
    IFLOW_CHECK(r.max_retries >= 0 && r.window > 0);
  }
  if (cfg.checkpoint.enabled) {
    IFLOW_CHECK_MSG(cfg.reliability.enabled,
                    "checkpointing requires the reliable data plane "
                    "(barriers are cuts in channel sequence space)");
    IFLOW_CHECK(cfg.checkpoint.interval_s > 0.0);
    IFLOW_CHECK(cfg.checkpoint.replicas >= 1);
  }
  link_bytes_.assign(net.link_count(), 0.0);
  for (std::size_t i = 0; i < net.link_count(); ++i) {
    link_index_.emplace(link_key(net.links()[i].a, net.links()[i].b), i);
  }
}

std::uint32_t Simulation::key_domain(query::StreamId a,
                                     query::StreamId b) const {
  const double sel = catalog_->selectivity(a, b);
  return static_cast<std::uint32_t>(
      std::max<long long>(1, std::llround(1.0 / sel)));
}

double Simulation::composite_width(
    const std::vector<query::StreamId>& streams) const {
  double w = 0.0;
  for (auto s : streams) w += catalog_->stream(s).tuple_width;
  if (streams.size() > 1) w *= cfg_.projection_factor;
  return w;
}

Simulation::InstanceId Simulation::source_for(query::StreamId s) {
  const auto it = sources_.find(s);
  if (it != sources_.end()) return it->second;
  Instance inst;
  inst.kind = Kind::kSource;
  inst.node = catalog_->stream(s).source;
  inst.streams = {s};
  inst.source_stream = s;
  instances_.push_back(std::move(inst));
  const auto id = static_cast<InstanceId>(instances_.size() - 1);
  sources_.emplace(s, id);
  // First emission: random phase so colocated sources do not synchronise.
  const double rate = source_rate(s, 0.0);
  schedule(
      Event{prng_.uniform(0.0, 1.0 / rate), next_seq_++, id, -1, nullptr, {}});
  return id;
}

Simulation::InstanceId Simulation::find_producer(
    const std::vector<query::StreamId>& streams, net::NodeId node) const {
  const auto it = producers_.find(producer_key(streams, node));
  IFLOW_CHECK_MSG(it != producers_.end(),
                  "no deployed producer for derived stream at node " << node);
  return it->second;
}

void Simulation::register_producer(const std::vector<query::StreamId>& streams,
                                   net::NodeId node, InstanceId id) {
  producers_.emplace(producer_key(streams, node), id);
}

void Simulation::deploy(const query::Deployment& d,
                        const query::RateModel& rates) {
  IFLOW_CHECK_MSG(!ran_, "deploy before run()");
  query::validate_deployment(d);

  auto streams_of_mask = [&rates](query::Mask m) {
    std::vector<query::StreamId> streams;
    for (int i = 0; i < rates.k(); ++i) {
      if (m >> i & 1) streams.push_back(rates.stream(i));
    }
    std::sort(streams.begin(), streams.end());
    return streams;
  };

  // Wires a data edge. In reliable mode every edge gets its own channel
  // (sequence numbers, replay buffer, dedup) attributed to the deploying
  // query; the legacy plane ships over the edge fire-and-forget.
  auto connect = [this, &d](InstanceId from, InstanceId to, int port) {
    Consumer c{to, port, d.query, kNoChannel};
    if (cfg_.reliability.enabled) {
      Channel ch;
      ch.producer = from;
      ch.consumer = to;
      ch.port = port;
      ch.query = d.query;
      channels_.push_back(std::move(ch));
      c.channel = static_cast<std::uint32_t>(channels_.size() - 1);
    }
    instances_[from].consumers.push_back(c);
  };

  // Interposes a selection operator at `node` in front of `producer`.
  auto filtered = [this, &d, &connect](InstanceId producer, net::NodeId node,
                                       double pass_probability) {
    Instance filter;
    filter.kind = Kind::kFilter;
    filter.node = node;
    filter.streams = instances_[producer].streams;
    filter.pass_probability = pass_probability;
    filter.owner = d.query;
    instances_.push_back(std::move(filter));
    const auto id = static_cast<InstanceId>(instances_.size() - 1);
    connect(producer, id, 0);
    return id;
  };

  // Resolve each leaf unit to a producing instance.
  std::vector<InstanceId> unit_producer;
  for (const query::LeafUnit& u : d.units) {
    const auto streams = streams_of_mask(u.mask);
    if (u.derived) {
      InstanceId producer = find_producer(streams, u.location);
      if (u.residual_filter < 1.0) {
        // Containment reuse: trim the broader stream at the provider.
        producer = filtered(producer, u.location, u.residual_filter);
      }
      unit_producer.push_back(producer);
    } else {
      IFLOW_CHECK_MSG(streams.size() == 1,
                      "non-derived composite unit has no engine producer");
      InstanceId producer = source_for(streams[0]);
      // Query selection predicates are applied at the source (§1).
      const double f = rates.query().filter_on(streams[0]);
      if (f < 1.0) {
        producer = filtered(producer, instances_[producer].node, f);
      }
      unit_producer.push_back(producer);
    }
  }

  // Join operators (arena order = children first).
  std::vector<InstanceId> op_instance;
  for (const query::DeployedOp& op : d.ops) {
    Instance inst;
    inst.kind = Kind::kJoin;
    inst.node = op.node;
    inst.streams = streams_of_mask(op.mask);
    inst.owner = d.query;
    instances_.push_back(std::move(inst));
    const auto id = static_cast<InstanceId>(instances_.size() - 1);
    op_instance.push_back(id);
    int port = 0;
    for (int child : {op.left, op.right}) {
      const InstanceId producer =
          query::child_is_unit(child)
              ? unit_producer[static_cast<std::size_t>(
                    query::child_unit_index(child))]
              : op_instance[static_cast<std::size_t>(child)];
      connect(producer, id, port++);
    }
    register_producer(instances_[id].streams, op.node, id);
  }

  // Sink.
  Instance sink;
  sink.kind = Kind::kSink;
  sink.node = d.sink;
  sink.query = d.query;
  sink.owner = d.query;
  sink.streams = streams_of_mask([&] {
    query::Mask all = 0;
    for (const query::LeafUnit& u : d.units) all |= u.mask;
    return all;
  }());
  instances_.push_back(std::move(sink));
  const auto sink_id = static_cast<InstanceId>(instances_.size() - 1);
  InstanceId root = d.ops.empty() ? unit_producer[0] : op_instance.back();
  if (d.aggregate.enabled()) {
    // Windowed aggregation co-located with the root producer; only the
    // (smaller) aggregate stream travels to the sink.
    Instance agg;
    agg.kind = Kind::kAggregate;
    agg.node = instances_[root].node;
    agg.streams = instances_[sink_id].streams;
    agg.aggregation = d.aggregate;
    agg.owner = d.query;
    instances_.push_back(std::move(agg));
    const auto agg_id = static_cast<InstanceId>(instances_.size() - 1);
    connect(root, agg_id, 0);
    root = agg_id;
    connect(root, sink_id, 0);
    // Aggregated results are query-specific; they are not re-exported as
    // derived streams.
  } else {
    connect(root, sink_id, 0);
    // The sink re-exports the full result (it is itself a derived source):
    // tuples arriving there are forwarded to any later subscriber.
    register_producer(instances_[sink_id].streams, d.sink, sink_id);
  }

  // Health watch for availability/downtime accounting under faults.
  QueryWatch watch;
  watch.query = d.query;
  query::Mask full = 0;
  for (const query::LeafUnit& u : d.units) full |= u.mask;
  watch.expected_rate = rates.tuple_rate(full);
  if (d.aggregate.enabled()) {
    // Expected non-empty groups per tumbling window (occupancy formula),
    // emitted once per window.
    const double per_window = watch.expected_rate * d.aggregate.window_s;
    const double g = std::max(1.0, d.aggregate.groups);
    const double nonempty = g * (1.0 - std::pow(1.0 - 1.0 / g, per_window));
    watch.expected_rate = nonempty / d.aggregate.window_s;
  }
  for (const query::LeafUnit& u : d.units) watch.nodes.push_back(u.location);
  for (const query::DeployedOp& op : d.ops) watch.nodes.push_back(op.node);
  watch.nodes.push_back(d.sink);
  const auto loc_of = [&d](int child) {
    return query::child_is_unit(child)
               ? d.units[static_cast<std::size_t>(
                             query::child_unit_index(child))]
                     .location
               : d.ops[static_cast<std::size_t>(child)].node;
  };
  for (const query::DeployedOp& op : d.ops) {
    for (int child : {op.left, op.right}) {
      const net::NodeId from = loc_of(child);
      if (from != op.node) watch.edges.emplace_back(from, op.node);
    }
  }
  if (d.root_node() != d.sink) watch.edges.emplace_back(d.root_node(), d.sink);
  watches_.push_back(std::move(watch));
}

void Simulation::schedule_fault(const SimFault& f) {
  IFLOW_CHECK_MSG(!ran_, "schedule_fault before run()");
  IFLOW_CHECK(f.time >= 0.0);
  if (!fnet_) {
    fnet_ = std::make_unique<net::Network>(*net_);
  }
  faults_.push_back(f);
  const auto idx = static_cast<InstanceId>(faults_.size() - 1);
  schedule(Event{f.time, next_seq_++, idx, kFaultPort, nullptr, {}});
}

void Simulation::apply_fault(double now, const SimFault& f) {
  switch (f.kind) {
    case SimFault::Kind::kFailLink: fnet_->fail_link(f.a, f.b); break;
    case SimFault::Kind::kRestoreLink: fnet_->restore_link(f.a, f.b); break;
    case SimFault::Kind::kCrashNode: fnet_->crash_node(f.a); break;
    case SimFault::Kind::kRestoreNode: fnet_->restore_node(f.a); break;
    case SimFault::Kind::kSetLinkLoss:
      fnet_->set_link_loss(f.a, f.b, f.value);
      break;
    case SimFault::Kind::kSetLinkJitter:
      fnet_->set_link_jitter(f.a, f.b, f.value);
      break;
    case SimFault::Kind::kMigrateOps:
      break;  // handled below, after routing reflects the current world
  }
  if (frt_ == nullptr) {
    frt_ = std::make_unique<net::RoutingTables>(
        net::RoutingTables::build(*fnet_));
  } else {
    frt_->sync(*fnet_);
  }
  // Checkpoint-plane reactions run after the routing sync so replayed
  // retention and migrated edges see the post-fault routes.
  if (f.kind == SimFault::Kind::kCrashNode) {
    if (cfg_.checkpoint.enabled) abort_epoch(now);
    if (cfg_.checkpoint.volatile_state) {
      // Volatile model: a crash loses the node's operator state (windows,
      // queues). Channel protocol state survives — transport endpoints
      // re-handshake, they do not forget what was delivered.
      for (Instance& inst : instances_) {
        if (inst.node == f.a) wipe_operator_state(inst);
      }
    }
  } else if (f.kind == SimFault::Kind::kRestoreNode) {
    if (cfg_.checkpoint.enabled) recover_node(now, f.a);
  } else if (f.kind == SimFault::Kind::kMigrateOps) {
    migrate_ops(now, f.a, f.b);
  }
  update_watches(now);
}

void Simulation::update_watches(double now) {
  for (QueryWatch& w : watches_) {
    bool down = false;
    for (net::NodeId n : w.nodes) down |= !fnet_->node_alive(n);
    for (const auto& [a, b] : w.edges) down |= !frt_->reachable(a, b);
    if (down && !w.broken) {
      w.broken = true;
      w.broken_since = now;
    } else if (!down && w.broken) {
      w.broken = false;
      w.downtime_s += now - w.broken_since;
    }
  }
}

void Simulation::schedule(Event e) { events_.push(std::move(e)); }

TuplePtr Simulation::make_source_tuple(query::StreamId s, double now) {
  auto t = std::make_shared<Tuple>();
  t->born = now;
  t->constituents = {s};
  const auto n = catalog_->stream_count();
  t->keys.resize(n);
  for (query::StreamId other = 0; other < n; ++other) {
    if (other == s) {
      t->keys[other] = 0;
      continue;
    }
    t->keys[other] = static_cast<std::uint32_t>(
        prng_.uniform_int(0, static_cast<std::int64_t>(key_domain(s, other)) - 1));
  }
  t->width = composite_width(t->constituents);
  return t;
}

bool Simulation::matches(const Tuple& a, const Tuple& b) const {
  const auto n = catalog_->stream_count();
  for (std::size_t i = 0; i < a.constituents.size(); ++i) {
    for (std::size_t j = 0; j < b.constituents.size(); ++j) {
      const query::StreamId sa = a.constituents[i];
      const query::StreamId sb = b.constituents[j];
      if (a.keys[i * n + sb] != b.keys[j * n + sa]) return false;
    }
  }
  return true;
}

TuplePtr Simulation::join_tuples(const Tuple& a, const Tuple& b) const {
  const auto n = catalog_->stream_count();
  auto t = std::make_shared<Tuple>();
  t->born = std::max(a.born, b.born);
  // Merge the sorted constituent lists, carrying each one's key row.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.constituents.size() || j < b.constituents.size()) {
    const bool take_a =
        j >= b.constituents.size() ||
        (i < a.constituents.size() && a.constituents[i] < b.constituents[j]);
    const Tuple& src = take_a ? a : b;
    const std::size_t idx = take_a ? i++ : j++;
    t->constituents.push_back(src.constituents[idx]);
    t->keys.insert(t->keys.end(), src.keys.begin() + static_cast<std::ptrdiff_t>(idx * n),
                   src.keys.begin() + static_cast<std::ptrdiff_t>((idx + 1) * n));
  }
  t->width = composite_width(t->constituents);
  return t;
}

void Simulation::send(double now, net::NodeId from, const TuplePtr& tuple,
                      const Consumer& to, InstanceId producer) {
  if (producer != kNoProducer) {
    instances_[producer].tuples_sent += 1;
    instances_[producer].bytes_sent += tuple->width;
  }
  if (to.channel != kNoChannel) {
    channel_send(now, to.channel, tuple);
    return;
  }
  const net::NodeId dest = instances_[to.instance].node;
  double arrive = now;
  std::vector<std::uint32_t> links;
  if (fnet_ && !fnet_->node_alive(dest)) {
    ++tuples_dropped_;
    return;
  }
  if (from != dest) {
    const std::vector<net::NodeId> path = cur_rt().cost_path(from, dest);
    if (path.empty()) {  // partitioned: nothing to carry the tuple
      ++tuples_dropped_;
      return;
    }
    links.reserve(path.size() - 1);
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const auto it = link_index_.find(link_key(path[h], path[h + 1]));
      IFLOW_CHECK(it != link_index_.end());
      const net::Link& link = net_->links()[it->second];
      link_bytes_[it->second] += tuple->width;
      links.push_back(static_cast<std::uint32_t>(it->second));
      arrive += link.delay_ms / 1000.0 + tuple->width * 8.0 / link.bandwidth_bps;
    }
  }
  schedule(Event{arrive, next_seq_++, to.instance, to.port, tuple,
                 std::move(links)});
}

// --- Reliable data plane ---------------------------------------------------

void Simulation::channel_send(double now, std::uint32_t ch,
                              const TuplePtr& tuple) {
  Channel& c = channels_[ch];
  if (c.pending.size() >= cfg_.reliability.window) {
    // Sliding window full: park the tuple in the ack-trimmed backlog. This
    // is how backpressure propagates upstream — the producer's output
    // simply waits until the consumer acks something.
    c.backlog.push_back(tuple);
    return;
  }
  const std::uint64_t seq = c.next_seq++;
  c.pending.emplace(seq, PendingTuple{tuple, 0});
  if (cfg_.checkpoint.enabled) {
    // Retention: keep everything sent at or past the last committed cut so
    // a downstream rollback can be replayed. Trimmed at epoch commit.
    c.retained.emplace(seq, tuple);
    c.retained_high_water = std::max(c.retained_high_water, c.retained.size());
  }
  transmit(now, ch, seq, /*is_retransmit=*/false);
}

void Simulation::hop_degradation(const net::Link& link, double now,
                                 double* extra_loss, double* slowdown) const {
  double keep = 1.0;
  double slow = 1.0;
  const net::Network& n = cur_net();
  const auto fold = [&](const net::Degradation& d) {
    if (!net::degraded_at(d, now)) return;
    keep *= 1.0 - d.loss;
    slow = std::max(slow, d.slowdown);
  };
  fold(link.degradation);
  fold(n.node_degradation(link.a));
  fold(n.node_degradation(link.b));
  *extra_loss = 1.0 - keep;
  *slowdown = slow;
}

void Simulation::transmit(double now, std::uint32_t ch, std::uint64_t seq,
                          bool is_retransmit) {
  Channel& c = channels_[ch];
  const auto it = c.pending.find(seq);
  IFLOW_CHECK(it != c.pending.end());
  const TuplePtr& tuple = it->second.tuple;
  const net::NodeId from = instances_[c.producer].node;
  const net::NodeId dest = instances_[c.consumer].node;
  double arrive = now;
  double expected_rtt = 0.0;  // clean-network data path + ack return
  std::vector<std::uint32_t> links;
  bool lost = false;
  ++c.sent;
  if (fnet_ && !fnet_->node_alive(dest)) {
    // Nothing reaches a dead node; the timeout below will replay the tuple
    // once the node (or a route to it) comes back — or give up after the
    // retry budget.
    lost = true;
  } else if (from != dest) {
    const std::vector<net::NodeId> path = cur_rt().cost_path(from, dest);
    if (path.empty()) {
      lost = true;  // partitioned; replay after the route heals
    } else {
      links.reserve(path.size() - 1);
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const auto li = link_index_.find(link_key(path[h], path[h + 1]));
        IFLOW_CHECK(li != link_index_.end());
        const net::Link& link = cur_net().links()[li->second];
        // The lossy hop still carried the bytes: charge up to and
        // including the hop that drops the tuple.
        link_bytes_[li->second] += tuple->width;
        if (is_retransmit) {
          c.retransmit_bytes += tuple->width;
        } else {
          c.data_bytes += tuple->width;
        }
        links.push_back(static_cast<std::uint32_t>(li->second));
        const double hop_s =
            link.delay_ms / 1000.0 + tuple->width * 8.0 / link.bandwidth_bps;
        // Expected RTT uses the clean model: the data hop plus the ack's
        // delay-only return, no degradation, no jitter.
        expected_rtt += hop_s + link.delay_ms / 1000.0;
        double extra_loss = 0.0;
        double slowdown = 1.0;
        hop_degradation(link, now, &extra_loss, &slowdown);
        arrive += hop_s * slowdown;
        if (link.loss > 0.0 && net_prng_.chance(link.loss)) {
          lost = true;
          break;
        }
        if (extra_loss > 0.0 && net_prng_.chance(extra_loss)) {
          lost = true;  // gray hop dropped the tuple
          break;
        }
        if (link.jitter_ms > 0.0) {
          arrive += net_prng_.uniform(0.0, link.jitter_ms / 1000.0);
        }
      }
    }
  }
  it->second.sent_at = now;
  it->second.expected_rtt_s = expected_rtt;
  if (!lost) {
    schedule(Event{arrive, next_seq_++, c.consumer, c.port, tuple,
                   std::move(links), ch, seq, c.incarnation});
  }
  // Always arm the retransmit timer; a timely ack disarms it by erasing the
  // pending entry before it fires.
  const ReliabilityConfig& r = cfg_.reliability;
  const double timeout =
      std::min(r.ack_timeout_s * std::pow(r.backoff_factor,
                                          static_cast<double>(
                                              it->second.retries)),
               r.max_backoff_s);
  schedule(
      Event{now + timeout, next_seq_++, c.producer, kTimeoutPort, nullptr, {},
            ch, seq, c.incarnation});
}

void Simulation::send_ack(double now, std::uint32_t ch, std::uint64_t seq) {
  Channel& c = channels_[ch];
  const net::NodeId from = instances_[c.consumer].node;
  const net::NodeId dest = instances_[c.producer].node;
  double arrive = now;
  std::vector<std::uint32_t> links;
  if (fnet_ && !fnet_->node_alive(dest)) return;  // sender is gone
  if (from != dest) {
    const std::vector<net::NodeId> path = cur_rt().cost_path(from, dest);
    if (path.empty()) return;
    links.reserve(path.size() - 1);
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const auto li = link_index_.find(link_key(path[h], path[h + 1]));
      IFLOW_CHECK(li != link_index_.end());
      const net::Link& link = cur_net().links()[li->second];
      // Acks are a few bytes — not charged to link totals.
      links.push_back(static_cast<std::uint32_t>(li->second));
      double extra_loss = 0.0;
      double slowdown = 1.0;
      hop_degradation(link, now, &extra_loss, &slowdown);
      arrive += link.delay_ms / 1000.0 * slowdown;
      if (link.loss > 0.0 && net_prng_.chance(link.loss)) return;  // ack lost
      if (extra_loss > 0.0 && net_prng_.chance(extra_loss)) return;
      if (link.jitter_ms > 0.0) {
        arrive += net_prng_.uniform(0.0, link.jitter_ms / 1000.0);
      }
    }
  }
  schedule(Event{arrive, next_seq_++, c.producer, kAckPort, nullptr,
                 std::move(links), ch, seq, c.incarnation});
}

void Simulation::handle_ack(double now, std::uint32_t ch, std::uint64_t seq) {
  Channel& c = channels_[ch];
  const auto it = c.pending.find(seq);
  if (it == c.pending.end()) return;  // duplicate ack
  c.rtt_sum_ms += (now - it->second.sent_at) * 1000.0;
  c.expected_rtt_sum_ms += it->second.expected_rtt_s * 1000.0;
  ++c.rtt_samples;
  c.pending.erase(it);
  pump_backlog(now, ch);
}

void Simulation::handle_timeout(double now, std::uint32_t ch,
                                std::uint64_t seq) {
  Channel& c = channels_[ch];
  const auto it = c.pending.find(seq);
  if (it == c.pending.end()) return;  // acked in time
  if (it->second.retries >= cfg_.reliability.max_retries) {
    ++c.lost;  // retry budget exhausted: lost-after-retries
    c.pending.erase(it);
    pump_backlog(now, ch);
    return;
  }
  ++it->second.retries;
  ++c.retransmits;
  transmit(now, ch, seq, /*is_retransmit=*/true);
}

void Simulation::pump_backlog(double now, std::uint32_t ch) {
  Channel& c = channels_[ch];
  while (!c.backlog.empty() &&
         c.pending.size() < cfg_.reliability.window) {
    const TuplePtr tuple = c.backlog.front();
    c.backlog.pop_front();
    const std::uint64_t seq = c.next_seq++;
    c.pending.emplace(seq, PendingTuple{tuple, 0});
    if (cfg_.checkpoint.enabled) {
      c.retained.emplace(seq, tuple);
      c.retained_high_water =
          std::max(c.retained_high_water, c.retained.size());
    }
    transmit(now, ch, seq, /*is_retransmit=*/false);
  }
}

void Simulation::mark_seen(Channel& c, std::uint64_t s) {
  if (s == c.seen_floor) {
    // In-order arrival: advance the floor directly instead of bouncing the
    // sequence through the out-of-order set.
    ++c.seen_floor;
  } else {
    c.seen.insert(s);
    c.seen_high_water = std::max(c.seen_high_water, c.seen.size());
  }
  // Compact: fold any contiguous run above the (possibly advanced) floor.
  while (c.seen.erase(c.seen_floor)) ++c.seen_floor;
}

void Simulation::receive(double now, std::uint32_t ch, std::uint64_t seq,
                         int port, const TuplePtr& tuple) {
  Channel& c = channels_[ch];
  if (seq < c.seen_floor || c.seen.count(seq)) {
    // Retransmit of something already delivered (the ack was lost or slow):
    // suppress the duplicate but re-ack so the sender trims its buffer.
    ++c.duplicates;
    send_ack(now, ch, seq);
    return;
  }
  Instance& inst = instances_[c.consumer];
  if (epoch_open_ && c.cut != Channel::kNoCut && seq >= c.cut &&
      !inst.snapped) {
    // Barrier alignment: a post-cut arrival before the receiver has
    // snapshotted. Ack it (so the sender's window keeps moving) but park it
    // in the alignment buffer without touching the dedup state — the floor
    // must meet the cut exactly for the snapshot to reduce to the cut.
    c.align[seq] = tuple;
    send_ack(now, ch, seq);
    return;
  }
  const ReliabilityConfig& r = cfg_.reliability;
  const bool queued = r.queue_capacity > 0 && r.service_s > 0.0 &&
                      inst.kind != Kind::kSource;
  if (!queued) {
    mark_seen(c, seq);
    send_ack(now, ch, seq);
    arrive_at(now, c.consumer, port, tuple);
    if (epoch_open_) maybe_snap(now, c.consumer);
    return;
  }
  if (inst.inbox.size() >= r.queue_capacity) {
    switch (r.overflow) {
      case OverflowPolicy::kBackpressure:
        // Refuse: no ack, no dedup entry. The sender's timeout replays the
        // tuple; meanwhile service completions drain the queue, so the
        // retransmit eventually finds room — bounded depth, no drops, no
        // deadlock.
        return;
      case OverflowPolicy::kDropNewest:
        ++inst.shed;
        mark_seen(c, seq);
        send_ack(now, ch, seq);  // shed deliberately: ack so nobody replays
        if (epoch_open_) maybe_snap(now, c.consumer);
        return;
      case OverflowPolicy::kDropOldest:
        ++inst.shed;
        inst.inbox.pop_front();
        break;
    }
  }
  mark_seen(c, seq);
  send_ack(now, ch, seq);
  inst.inbox.emplace_back(port, tuple);
  inst.max_queue_depth = std::max(inst.max_queue_depth, inst.inbox.size());
  if (!inst.busy) {
    inst.busy = true;
    schedule(Event{now + r.service_s, next_seq_++, c.consumer, kServicePort,
                   nullptr, {}});
  }
  if (epoch_open_) maybe_snap(now, c.consumer);
}

void Simulation::handle_service(double now, InstanceId id) {
  Instance& inst = instances_[id];
  if (inst.inbox.empty()) {
    inst.busy = false;
    return;
  }
  const auto [port, tuple] = inst.inbox.front();
  inst.inbox.pop_front();
  arrive_at(now, id, port, tuple);
  if (inst.inbox.empty()) {
    inst.busy = false;
  } else {
    schedule(Event{now + cfg_.reliability.service_s, next_seq_++, id,
                   kServicePort, nullptr, {}});
  }
}

// --- Checkpoint/recovery plane ---------------------------------------------

void Simulation::schedule_barrier(double after) {
  const double iv = cfg_.checkpoint.interval_s;
  double next = (std::floor(after / iv) + 1.0) * iv;
  // floor(after / iv) can round down one whole step when `after` sits exactly
  // on a barrier instant (e.g. a commit at the barrier timestamp with
  // 19.6 / 4.9 -> 3.9999...), which would schedule a zero-advance barrier and
  // loop forever at a frozen clock. Force strictly-future scheduling.
  while (next <= after) next += iv;
  if (next >= cfg_.duration_s) return;
  schedule(Event{next, next_seq_++, 0, kBarrierPort, nullptr, {}});
}

void Simulation::begin_epoch(double now) {
  IFLOW_CHECK(!epoch_open_);
  // A dead host cannot participate in a coordinated snapshot — and worse,
  // its volatile state has already been wiped, so snapping it would commit
  // the post-crash emptiness as ground truth and recovery would "restore"
  // the loss (a crash fault and a barrier landing on the same timestamp
  // process fault-first). Skip the barrier and re-arm for the next interval.
  if (fnet_ != nullptr) {
    for (const Instance& i : instances_) {
      if (!fnet_->node_alive(i.node)) {
        schedule_barrier(now);
        return;
      }
    }
  }
  epoch_open_ = true;
  building_ = EpochSnapshot{};
  building_.epoch = next_epoch_++;
  building_.barrier_time = now;
  building_.inst.resize(instances_.size());
  building_.cuts.assign(channels_.size(), Channel::kNoCut);
  for (Channel& c : channels_) c.cut = Channel::kNoCut;
  for (Instance& i : instances_) i.snapped = false;
  unsnapped_ = instances_.size();
  // Barriers are injected at the sources; cuts cascade downstream from
  // there as each consumer's dedup floor reaches the cut on every input.
  for (InstanceId id = 0; id < instances_.size(); ++id) {
    if (epoch_open_ && instances_[id].kind == Kind::kSource) {
      snap_instance(now, id);
    }
  }
}

void Simulation::maybe_snap(double now, InstanceId id) {
  if (!epoch_open_ || instances_[id].snapped) return;
  for (const Channel& c : channels_) {
    if (c.consumer != id) continue;
    if (c.cut == Channel::kNoCut || c.seen_floor < c.cut) return;
  }
  snap_instance(now, id);
}

void Simulation::snap_instance(double now, InstanceId id) {
  Instance& inst = instances_[id];
  IFLOW_CHECK(epoch_open_ && !inst.snapped);
  inst.snapped = true;
  --unsnapped_;
  InstState st;
  st.window[0] = inst.window[0];
  st.window[1] = inst.window[1];
  st.max_born = inst.max_born;
  st.window_index = inst.window_index;
  st.groups_seen = inst.groups_seen;
  st.agg_windows = inst.agg_windows;
  st.inbox = inst.inbox;
  st.delivered = inst.delivered;
  st.latency_sum_s = inst.latency_sum_s;
  building_.inst[id] = std::move(st);
  // Stamp the cut on every output channel before anything else can flow:
  // all sequences below it belong to this epoch, everything at or above it
  // to the next.
  for (const Consumer& con : inst.consumers) {
    if (con.channel == kNoChannel) continue;
    Channel& ch = channels_[con.channel];
    IFLOW_CHECK(ch.cut == Channel::kNoCut);
    ch.cut = ch.next_seq;
    building_.cuts[con.channel] = ch.cut;
  }
  // Drain the alignment buffers of this instance's inputs in sequence
  // order. Outputs produced by the drain carry post-cut sequences, so
  // downstream alignment stays correct.
  for (std::uint32_t ci = 0; ci < channels_.size(); ++ci) {
    if (channels_[ci].consumer != id || channels_[ci].align.empty()) continue;
    std::map<std::uint64_t, TuplePtr> drained;
    drained.swap(channels_[ci].align);
    for (const auto& [s, t] : drained) {
      mark_seen(channels_[ci], s);
      arrive_at(now, id, channels_[ci].port, t);
    }
  }
  // The freshly stamped cuts may already be met on idle channels.
  for (const Consumer& con : inst.consumers) {
    if (!epoch_open_) break;
    if (con.channel != kNoChannel) maybe_snap(now, con.instance);
  }
  if (epoch_open_ && unsnapped_ == 0) commit_epoch(now);
}

double Simulation::instance_state_bytes(const InstState& s) const {
  double b = 64.0;  // descriptor: kind, node, watermark, counters
  for (const auto* w : {&s.window[0], &s.window[1]}) {
    for (const auto& [born, t] : *w) b += 16.0 + t->width;
  }
  b += 8.0 * static_cast<double>(s.groups_seen.size());
  for (const auto& [w, groups] : s.agg_windows) {
    b += 16.0 + 8.0 * static_cast<double>(groups.size());
  }
  for (const auto& [port, t] : s.inbox) b += 16.0 + t->width;
  return b;
}

void Simulation::commit_epoch(double now) {
  IFLOW_CHECK(epoch_open_ && unsnapped_ == 0);
  epoch_open_ = false;
  const double replicas = static_cast<double>(cfg_.checkpoint.replicas);
  double total = 0.0;
  for (InstanceId id = 0; id < instances_.size(); ++id) {
    const double b = instance_state_bytes(building_.inst[id]) * replicas;
    snapshot_bytes_by_query_[instances_[id].owner] += b;
    total += b;
  }
  for (const Channel& c : channels_) {
    const double b = 16.0 * replicas;  // cut + incarnation
    snapshot_bytes_by_query_[c.query] += b;
    total += b;
  }
  building_.bytes = total;
  committed_ = std::move(building_);
  building_ = EpochSnapshot{};
  // The committed cut releases retention below it on every channel.
  for (std::uint32_t ci = 0; ci < channels_.size(); ++ci) {
    Channel& c = channels_[ci];
    const std::uint64_t cut = committed_.cuts[ci];
    IFLOW_CHECK(cut != Channel::kNoCut);
    c.retained.erase(c.retained.begin(), c.retained.lower_bound(cut));
  }
  ++snap_stats_.epochs_committed;
  snap_stats_.bytes_last = committed_.bytes;
  snap_stats_.bytes_total += committed_.bytes;
  snap_stats_.bytes_max = std::max(snap_stats_.bytes_max, committed_.bytes);
  const double lat = now - committed_.barrier_time;
  snap_stats_.barrier_latency_sum_s += lat;
  snap_stats_.barrier_latency_max_s =
      std::max(snap_stats_.barrier_latency_max_s, lat);
  schedule_barrier(now);
}

void Simulation::abort_epoch(double now) {
  if (!epoch_open_) return;
  epoch_open_ = false;
  ++snap_stats_.epochs_aborted;
  // Release the alignment buffers: their tuples were acked, so nobody will
  // replay them — deliver them now or lose them.
  for (Channel& c : channels_) {
    c.cut = Channel::kNoCut;
    if (c.align.empty()) continue;
    std::map<std::uint64_t, TuplePtr> drained;
    drained.swap(c.align);
    for (const auto& [s, t] : drained) {
      mark_seen(c, s);
      arrive_at(now, c.consumer, c.port, t);
    }
  }
  building_ = EpochSnapshot{};
  schedule_barrier(now);
}

void Simulation::wipe_operator_state(Instance& inst) {
  if (inst.kind == Kind::kSource || inst.kind == Kind::kSink) return;
  inst.window[0].clear();
  inst.window[1].clear();
  inst.max_born = -std::numeric_limits<double>::infinity();
  inst.window_index = -1;
  inst.groups_seen.clear();
  inst.agg_windows.clear();
  inst.inbox.clear();
}

void Simulation::recover_node(double now, net::NodeId n) {
  if (committed_.epoch < 0) return;  // nothing committed to roll back to
  abort_epoch(now);  // an in-flight barrier cannot survive a rollback
  // Rollback region: the restored node's instances plus their transitive
  // downstream closure. Partial rollback is unsound (see CheckpointConfig):
  // replay re-interleaves join inputs, so everything the restored state
  // feeds must rewind to the same cut — sinks included (their delivery
  // counters revert and re-earn the replayed results).
  std::vector<char> region(instances_.size(), 0);
  std::deque<InstanceId> work;
  for (InstanceId id = 0; id < instances_.size(); ++id) {
    if (instances_[id].node == n) {
      region[id] = 1;
      work.push_back(id);
    }
  }
  while (!work.empty()) {
    const InstanceId u = work.front();
    work.pop_front();
    for (const Consumer& con : instances_[u].consumers) {
      if (!region[con.instance]) {
        region[con.instance] = 1;
        work.push_back(con.instance);
      }
    }
  }
  for (InstanceId id = 0; id < instances_.size(); ++id) {
    if (!region[id]) continue;
    Instance& inst = instances_[id];
    const InstState& st = committed_.inst[id];
    inst.window[0] = st.window[0];
    inst.window[1] = st.window[1];
    inst.max_born = st.max_born;
    inst.window_index = st.window_index;
    inst.groups_seen = st.groups_seen;
    inst.agg_windows = st.agg_windows;
    inst.inbox = st.inbox;
    inst.delivered = st.delivered;
    inst.latency_sum_s = st.latency_sum_s;
    inst.busy = false;
    if (!inst.inbox.empty() && cfg_.reliability.queue_capacity > 0 &&
        cfg_.reliability.service_s > 0.0) {
      inst.busy = true;
      schedule(Event{now + cfg_.reliability.service_s, next_seq_++, id,
                     kServicePort, nullptr, {}});
    }
  }
  std::uint64_t replayed = 0;
  for (std::uint32_t ci = 0; ci < channels_.size(); ++ci) {
    Channel& c = channels_[ci];
    const bool s_in = region[c.producer] != 0;
    const bool r_in = region[c.consumer] != 0;
    if (!s_in && !r_in) continue;
    // Downstream closure: a region sender always has a region receiver.
    IFLOW_CHECK(r_in);
    const std::uint64_t cut = committed_.cuts[ci];
    IFLOW_CHECK(cut != Channel::kNoCut);
    // Invalidate everything in flight before restarting the sequence space.
    ++c.incarnation;
    c.align.clear();
    c.seen_floor = cut;
    c.seen.clear();
    if (s_in) {
      // Both ends rewound: the sender regenerates post-cut output from its
      // restored state, so drop the stale retention tail.
      c.next_seq = cut;
      c.pending.clear();
      c.backlog.clear();
      c.retained.erase(c.retained.lower_bound(cut), c.retained.end());
    } else {
      // Boundary channel: the live sender replays its retention past the
      // cut. Pre-cut pending entries are known-delivered (the floor met the
      // cut when the epoch committed), so rebuild pending from retention.
      c.pending.clear();
      for (const auto& [s, t] : c.retained) {
        if (s < cut) continue;
        c.pending.emplace(s, PendingTuple{t, 0});
        ++c.retransmits;
        ++replayed;
        transmit(now, ci, s, /*is_retransmit=*/true);
      }
    }
  }
  ++snap_stats_.recoveries;
  snap_stats_.replayed_tuples += replayed;
  const double lat = now - committed_.barrier_time;
  snap_stats_.recovery_latency_sum_s += lat;
  snap_stats_.recovery_latency_max_s =
      std::max(snap_stats_.recovery_latency_max_s, lat);
}

void Simulation::migrate_ops(double now, net::NodeId from, net::NodeId to) {
  IFLOW_CHECK_MSG(!fnet_ || fnet_->node_alive(to),
                  "migration target node " << to << " is down");
  // Cuts stamped for the old placement stay valid (alignment is pure
  // sequence arithmetic), but an in-flight barrier would charge the moved
  // state to the wrong epoch boundary — abort and re-arm instead.
  abort_epoch(now);
  const bool warm = cfg_.checkpoint.enabled;
  for (Instance& inst : instances_) {
    if (inst.node != from) continue;
    if (inst.kind != Kind::kJoin && inst.kind != Kind::kFilter &&
        inst.kind != Kind::kAggregate) {
      continue;  // sources and sinks are pinned placements
    }
    inst.node = to;
    // Warm handoff ships the operator state with the move; a cold move
    // restarts the operator empty (mid-window join partners are lost).
    if (!warm) wipe_operator_state(inst);
  }
}

bool Simulation::hash_pass(const Tuple& t, InstanceId id, double p) const {
  // FNV-1a over the tuple's content plus an instance salt. (h >> 11) spans
  // 53 uniform bits, so u is uniform in [0, 1) and P(u < p) = p.
  std::uint64_t h =
      1469598103934665603ULL ^ ((id + 1) * 0x9E3779B97F4A7C15ULL);
  for (std::uint32_t k : t.keys) h = (h ^ k) * 1099511628211ULL;
  std::uint64_t born_bits = 0;
  static_assert(sizeof(born_bits) == sizeof(t.born));
  std::memcpy(&born_bits, &t.born, sizeof(born_bits));
  h = (h ^ (born_bits >> 32)) * 1099511628211ULL;
  h = (h ^ (born_bits & 0xFFFFFFFFULL)) * 1099511628211ULL;
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

// ---------------------------------------------------------------------------

void Simulation::emit_from_source(double now, InstanceId id) {
  Instance& inst = instances_[id];
  // A crashed source node emits nothing but keeps its clock ticking, so it
  // resumes production as soon as the node is restored. In reliable mode the
  // source also goes quiet for the final drain window so in-flight and
  // retransmitted tuples settle before the horizon; the cutoff is a pure
  // function of time, so lossy and loss-free runs emit identically.
  const bool draining = cfg_.reliability.enabled &&
                        now >= cfg_.duration_s - cfg_.reliability.drain_s;
  if ((!fnet_ || fnet_->node_alive(inst.node)) && !draining) {
    const TuplePtr t = make_source_tuple(inst.source_stream, now);
    ++tuples_emitted_;
    for (const Consumer& c : inst.consumers) send(now, inst.node, t, c, id);
  }
  const double rate = source_rate(inst.source_stream, now);
  const double gap = cfg_.poisson ? prng_.exponential(rate) : 1.0 / rate;
  schedule(Event{now + gap, next_seq_++, id, -1, nullptr, {}});
}

double Simulation::source_rate(query::StreamId s, double now) const {
  const double base = catalog_->stream(s).tuple_rate;
  if (!cfg_.rate_factor) return base;
  // The floor keeps the clock ticking through curve troughs (a stalled
  // source would never observe the factor rising again) and keeps the
  // exponential draw well-defined.
  return std::max(0.01 * base, base * cfg_.rate_factor(s, now));
}

void Simulation::arrive_at(double now, InstanceId id, int port,
                           const TuplePtr& tuple) {
  Instance& inst = instances_[id];
  ++inst.tuples_in;
  if (inst.kind == Kind::kSink) {
    ++inst.delivered;
    inst.latency_sum_s += now - tuple->born;
    for (const Consumer& c : inst.consumers) {
      send(now, inst.node, tuple, c, id);
    }
    return;
  }
  if (inst.kind == Kind::kFilter) {
    // Reliable mode decides by content hash instead of the shared Prng
    // stream, so the decision is identical for a tuple however (and however
    // often) it arrives — a precondition for the exactly-once contract.
    const bool pass = cfg_.reliability.enabled
                          ? hash_pass(*tuple, id, inst.pass_probability)
                          : prng_.chance(inst.pass_probability);
    if (pass) {
      for (const Consumer& c : inst.consumers) {
        send(now, inst.node, tuple, c, id);
      }
    }
    return;
  }
  if (inst.kind == Kind::kAggregate) {
    // Group assignment: hash of the tuple's join keys.
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint32_t k : tuple->keys) {
      h = (h ^ k) * 1099511628211ULL;
    }
    const auto groups =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       std::llround(inst.aggregation.groups)));
    if (cfg_.reliability.enabled) {
      // Event-time tumbling windows with a lateness watermark: a window
      // flushes once max-born has moved `lateness_s` past its end, so
      // retransmit-delayed tuples still land in their window and both the
      // flush set and the per-window group sets are delivery-schedule
      // independent.
      inst.max_born = std::max(inst.max_born, tuple->born);
      const double win = inst.aggregation.window_s;
      const auto w = static_cast<std::int64_t>(std::floor(tuple->born / win));
      inst.agg_windows[w].insert(h % groups);
      const double watermark = inst.max_born - cfg_.reliability.lateness_s;
      while (!inst.agg_windows.empty()) {
        const auto first = inst.agg_windows.begin();
        const double end = static_cast<double>(first->first + 1) * win;
        if (end > watermark) break;
        for (std::uint64_t group : first->second) {
          auto out = std::make_shared<Tuple>();
          out->born = end;  // event time, not flush time
          out->constituents = inst.streams;
          out->keys.assign(inst.streams.size() * catalog_->stream_count(),
                           static_cast<std::uint32_t>(group));
          out->width = inst.aggregation.out_width;
          for (const Consumer& c : inst.consumers) {
            send(now, inst.node, out, c, id);
          }
        }
        inst.agg_windows.erase(first);
      }
      return;
    }
    const auto w = static_cast<std::int64_t>(now / inst.aggregation.window_s);
    if (w != inst.window_index) {
      // Window closed: one output tuple per non-empty group.
      if (inst.window_index >= 0) {
        for (std::uint64_t group : inst.groups_seen) {
          auto out = std::make_shared<Tuple>();
          out->born = now;
          out->constituents = inst.streams;
          out->keys.assign(inst.streams.size() * catalog_->stream_count(),
                           static_cast<std::uint32_t>(group));
          out->width = inst.aggregation.out_width;
          for (const Consumer& c : inst.consumers) {
            send(now, inst.node, out, c, id);
          }
        }
      }
      inst.groups_seen.clear();
      inst.window_index = w;
    }
    inst.groups_seen.insert(h % groups);
    return;
  }
  IFLOW_CHECK(inst.kind == Kind::kJoin);
  IFLOW_CHECK(port == 0 || port == 1);
  const int other = 1 - port;
  if (cfg_.reliability.enabled) {
    // Event-time join: window entries are keyed by born, a pair matches iff
    // their borns lie within window_s, and partners are retained an extra
    // lateness_s so a retransmit-delayed tuple still meets everything it
    // would have met loss-free. Each qualifying pair emits exactly once —
    // when its later-arriving member probes (channel dedup guarantees each
    // member arrives once).
    inst.max_born = std::max(inst.max_born, tuple->born);
    const double horizon =
        inst.max_born - cfg_.window_s - cfg_.reliability.lateness_s;
    for (auto* w : {&inst.window[0], &inst.window[1]}) {
      while (!w->empty() && w->front().first < horizon) {
        w->pop_front();
      }
    }
    for (const auto& [born, candidate] : inst.window[other]) {
      if (std::abs(born - tuple->born) > cfg_.window_s) continue;
      if (!matches(*tuple, *candidate)) continue;
      const TuplePtr joined = join_tuples(*tuple, *candidate);
      for (const Consumer& c : inst.consumers) {
        send(now, inst.node, joined, c, id);
      }
    }
    inst.window[port].emplace_back(tuple->born, tuple);
    return;
  }
  // Expire both windows, probe the opposite one, emit matches, store self.
  for (auto* w : {&inst.window[0], &inst.window[1]}) {
    while (!w->empty() && w->front().first < now - cfg_.window_s) {
      w->pop_front();
    }
  }
  for (const auto& [when, candidate] : inst.window[other]) {
    (void)when;
    if (!matches(*tuple, *candidate)) continue;
    const TuplePtr joined = join_tuples(*tuple, *candidate);
    for (const Consumer& c : inst.consumers) {
      send(now, inst.node, joined, c, id);
    }
  }
  inst.window[port].emplace_back(now, tuple);
}

void Simulation::run() {
  IFLOW_CHECK_MSG(!ran_, "run() may only be called once");
  ran_ = true;
  if (cfg_.checkpoint.enabled) schedule_barrier(0.0);
  while (!events_.empty()) {
    const Event e = events_.top();
    events_.pop();
    if (e.time >= cfg_.duration_s) break;
    if (e.port == kFaultPort) {
      apply_fault(e.time, faults_[e.instance]);
    } else if (e.channel != kNoChannel &&
               e.inc != channels_[e.channel].incarnation) {
      // Stale incarnation: the channel was rolled back while this event
      // (data, ack, or timer) was in flight; its sequence number belongs to
      // the restarted epoch now, so the event must die instead of colliding.
    } else if (e.port == kBarrierPort) {
      begin_epoch(e.time);
    } else if (e.port == kTimeoutPort) {
      // Timers are local to the sender and never dropped — they are what
      // drives recovery when everything else is.
      handle_timeout(e.time, e.channel, e.tseq);
    } else if (e.port == kServicePort) {
      // Operator state (queues included) survives short crashes: the
      // process restarts with its state, so service completions always run.
      handle_service(e.time, e.instance);
    } else if (e.port == kAckPort) {
      if (fnet_) {
        // In-flight acks die with the links/nodes they were crossing; the
        // sender will retransmit and the receiver re-ack.
        bool dropped = !fnet_->node_alive(instances_[e.instance].node);
        for (std::uint32_t li : e.links) dropped |= !fnet_->usable(li);
        if (dropped) continue;
      }
      handle_ack(e.time, e.channel, e.tseq);
    } else if (e.port < 0) {
      emit_from_source(e.time, e.instance);
    } else {
      if (fnet_) {
        // In-flight tuples die with the links/nodes they were crossing.
        bool dropped = !fnet_->node_alive(instances_[e.instance].node);
        for (std::uint32_t li : e.links) dropped |= !fnet_->usable(li);
        if (dropped) {
          ++tuples_dropped_;
          continue;
        }
      }
      if (e.channel != kNoChannel) {
        receive(e.time, e.channel, e.tseq, e.port, e.tuple);
      } else {
        arrive_at(e.time, e.instance, e.port, e.tuple);
      }
    }
  }
  // Close out open downtime intervals at the horizon.
  for (QueryWatch& w : watches_) {
    if (w.broken) {
      w.broken = false;
      w.downtime_s += cfg_.duration_s - w.broken_since;
    }
  }
}

double Simulation::measured_cost_per_second() const {
  double total = 0.0;
  for (std::size_t i = 0; i < link_bytes_.size(); ++i) {
    total += link_bytes_[i] * net_->links()[i].cost_per_byte;
  }
  return total / cfg_.duration_s;
}

double Simulation::link_bytes(std::size_t link_index) const {
  IFLOW_CHECK(link_index < link_bytes_.size());
  return link_bytes_[link_index];
}

std::vector<OperatorStats> Simulation::operator_stats() const {
  std::vector<OperatorStats> out;
  out.reserve(instances_.size());
  for (const Instance& inst : instances_) {
    OperatorStats st;
    switch (inst.kind) {
      case Kind::kSource: st.kind = "source"; break;
      case Kind::kJoin: st.kind = "join"; break;
      case Kind::kFilter: st.kind = "filter"; break;
      case Kind::kAggregate: st.kind = "aggregate"; break;
      case Kind::kSink: st.kind = "sink"; break;
    }
    st.node = inst.node;
    st.streams = inst.streams;
    st.tuples_in = inst.tuples_in;
    st.tuples_sent = inst.tuples_sent;
    st.bytes_sent = inst.bytes_sent;
    out.push_back(std::move(st));
  }
  return out;
}

double Simulation::mean_latency_ms(query::QueryId q) const {
  std::uint64_t delivered = 0;
  double latency = 0.0;
  for (const Instance& inst : instances_) {
    if (inst.kind == Kind::kSink && inst.query == q) {
      delivered += inst.delivered;
      latency += inst.latency_sum_s;
    }
  }
  if (delivered == 0) return 0.0;
  return 1000.0 * latency / static_cast<double>(delivered);
}

std::uint64_t Simulation::tuples_delivered(query::QueryId q) const {
  std::uint64_t total = 0;
  for (const Instance& inst : instances_) {
    if (inst.kind == Kind::kSink && inst.query == q) total += inst.delivered;
  }
  return total;
}

double Simulation::delivered_rate(query::QueryId q) const {
  return static_cast<double>(tuples_delivered(q)) / cfg_.duration_s;
}

double Simulation::availability(query::QueryId q) const {
  double expected = 0.0;
  for (const QueryWatch& w : watches_) {
    if (w.query == q) expected += w.expected_rate;
  }
  if (expected <= 0.0) return 0.0;
  return delivered_rate(q) / expected;
}

DeliveryStats Simulation::delivery_stats(query::QueryId q) const {
  DeliveryStats s;
  for (const Channel& c : channels_) {
    if (c.query != q) continue;
    s.retransmits += c.retransmits;
    s.duplicates += c.duplicates;
    s.lost += c.lost;
    s.data_bytes += c.data_bytes;
    s.retransmit_bytes += c.retransmit_bytes;
    s.seen_high_water = std::max(s.seen_high_water, c.seen_high_water);
    s.retained_high_water =
        std::max(s.retained_high_water, c.retained_high_water);
  }
  const auto sb = snapshot_bytes_by_query_.find(q);
  if (sb != snapshot_bytes_by_query_.end()) s.snapshot_bytes = sb->second;
  for (const Instance& inst : instances_) {
    if (inst.kind == Kind::kSink && inst.query == q) {
      s.delivered += inst.delivered;
    }
    if (inst.owner == q) {
      s.shed += inst.shed;
      s.max_queue_depth = std::max(s.max_queue_depth, inst.max_queue_depth);
    }
  }
  // Goodput over the emission window (sources go quiet during the drain).
  const double horizon = cfg_.reliability.enabled
                             ? cfg_.duration_s - cfg_.reliability.drain_s
                             : cfg_.duration_s;
  if (horizon > 0.0) {
    s.goodput_tps = static_cast<double>(s.delivered) / horizon;
  }
  return s;
}

SnapshotStats Simulation::snapshot_stats() const {
  SnapshotStats s = snap_stats_;
  for (const Channel& c : channels_) {
    s.retained_high_water = std::max(s.retained_high_water,
                                     c.retained_high_water);
  }
  return s;
}

std::vector<ChannelTelemetry> Simulation::channel_telemetry() const {
  std::vector<ChannelTelemetry> out;
  out.reserve(channels_.size());
  for (const Channel& c : channels_) {
    ChannelTelemetry t;
    t.from = instances_[c.producer].node;
    t.to = instances_[c.consumer].node;
    t.query = c.query;
    if (t.from != t.to) t.path = cur_rt().cost_path(t.from, t.to);
    t.sent = c.sent;
    t.retransmits = c.retransmits;
    t.lost = c.lost;
    t.rtt_samples = c.rtt_samples;
    t.rtt_sum_ms = c.rtt_sum_ms;
    t.expected_rtt_sum_ms = c.expected_rtt_sum_ms;
    t.max_queue_depth = instances_[c.consumer].max_queue_depth;
    out.push_back(std::move(t));
  }
  return out;
}

double Simulation::downtime_s(query::QueryId q) const {
  double total = 0.0;
  for (const QueryWatch& w : watches_) {
    if (w.query == q) total += w.downtime_s;
  }
  return total;
}

}  // namespace iflow::engine
