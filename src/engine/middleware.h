// Self-management layer (paper §2: "Self-adaptivity is incorporated into
// the system through the Middleware Layer which re-triggers the query
// optimization algorithm when the changes in network, load or data
// conditions demand recomputing of query plans and deployments").
//
// The Middleware owns the mutable system state — network, routing tables,
// clustering hierarchy, advertisement registry and the active deployments —
// and exposes:
//   * deploy(query)         — optimize + record + advertise;
//   * set_link_cost(a,b,c)  — a monitored network condition change, which
//     rebuilds routing and the hierarchy;
//   * adapt()               — re-optimizes every query whose current cost
//     drifted past the threshold relative to its planned cost.
#pragma once

#include <memory>

#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/search/workspace.h"
#include "opt/top_down.h"

namespace iflow::engine {

enum class Algorithm { kTopDown, kBottomUp, kExhaustive };

struct Redeployment {
  query::QueryId query = 0;
  double planned_cost = 0.0;   // cost at original deployment time
  double drifted_cost = 0.0;   // cost under the changed network
  double adapted_cost = 0.0;   // cost after re-optimization
};

class Middleware {
 public:
  /// Takes ownership of nothing: `net` and `catalog` must outlive the
  /// middleware; both are mutated by the condition-change entry points.
  Middleware(net::Network& net, query::Catalog& catalog, int max_cs,
             Algorithm algorithm, std::uint64_t seed,
             double drift_threshold = 1.2);

  /// Optimizes and records a query; reuse is on (advertisements flow).
  opt::OptimizeResult deploy(const query::Query& q);

  /// Applies a network condition change and refreshes routing + hierarchy.
  void set_link_cost(net::NodeId a, net::NodeId b, double cost_per_byte);

  /// Applies a data condition change: a stream's observed rate moved.
  /// Deployed operators keep carrying the new volume; adapt() re-plans the
  /// queries whose cost drifted.
  void set_stream_rate(query::StreamId stream, double tuple_rate);

  /// A node can no longer host operators (overload, maintenance, crash of
  /// the processing service — links keep forwarding). The node leaves the
  /// hierarchy, is excluded from future placements, and every deployment
  /// with an operator or reused provider on it is re-planned immediately.
  /// Returns the redeployments performed. Throws if a stream source or an
  /// active sink lives there (those cannot migrate).
  std::vector<Redeployment> fail_node(net::NodeId n);

  /// Per-node processing capacity, expressed as the total operator INPUT
  /// byte rate a node may host (the paper's §1.1: "node N2 may be
  /// overloaded"). 0 = unlimited (default).
  void set_node_capacity(double max_input_bytes_per_s);

  /// Operator input load currently hosted by each node.
  std::vector<double> node_loads() const;

  /// Detects nodes over capacity, excludes them from hosting further
  /// operators, and migrates the deployments whose operators sit there.
  /// Iterates until no node is overloaded or nothing can move. Exclusions
  /// are load-shedding only: the node stays in the hierarchy and keeps
  /// forwarding, sourcing and sinking.
  std::vector<Redeployment> rebalance_load();

  /// Re-optimizes every active query whose cost drifted beyond the
  /// threshold; returns what was redeployed.
  std::vector<Redeployment> adapt();

  /// Current total cost of all active deployments under current routing.
  double total_current_cost() const;

  const net::RoutingTables& routing() const { return *routing_; }
  const cluster::Hierarchy& hierarchy() const { return *hierarchy_; }
  const advert::Registry& registry() const { return registry_; }
  std::size_t active_queries() const { return active_.size(); }

  /// Current deployments of all active queries (monitoring, diagnostics).
  std::vector<const query::Deployment*> deployments() const {
    std::vector<const query::Deployment*> out;
    out.reserve(active_.size());
    for (const Active& a : active_) out.push_back(&a.deployment);
    return out;
  }

 private:
  struct Active {
    query::Query q;
    query::Deployment deployment;
    double planned_cost = 0.0;
  };

  opt::OptimizerEnv env();
  std::unique_ptr<opt::Optimizer> make_optimizer();
  void rebuild_views();

  net::Network* net_;
  query::Catalog* catalog_;
  int max_cs_;
  Algorithm algorithm_;
  Prng prng_;
  double drift_threshold_;

  /// Re-optimizes one active query against everyone else's operators;
  /// returns the candidate result (which the caller may accept).
  opt::OptimizeResult replan(const Active& a);

  std::unique_ptr<net::RoutingTables> routing_;
  std::unique_ptr<cluster::Hierarchy> hierarchy_;
  /// Planner scratch + worker pool reused across every deploy/adapt cycle.
  opt::PlanWorkspace workspace_;
  advert::Registry registry_;
  std::vector<Active> active_;
  std::vector<net::NodeId> failed_nodes_;
  std::vector<net::NodeId> overloaded_nodes_;  // load-shed, still forwarding
  double node_capacity_ = 0.0;                 // 0 = unlimited
};

}  // namespace iflow::engine
