// Self-management layer (paper §2: "Self-adaptivity is incorporated into
// the system through the Middleware Layer which re-triggers the query
// optimization algorithm when the changes in network, load or data
// conditions demand recomputing of query plans and deployments").
//
// The Middleware owns the mutable system state — network, routing tables,
// clustering hierarchy, advertisement registry and the active deployments —
// and exposes:
//   * deploy(query)         — optimize + record + advertise;
//   * set_link_cost(a,b,c)  — a monitored network condition change, which
//     rebuilds routing and the hierarchy;
//   * adapt()               — re-optimizes every query whose current cost
//     drifted past the threshold relative to its planned cost.
//
// Failure model (DESIGN.md §10). Two degradation classes:
//   * fail_node   — the processing service dies but the node keeps
//     forwarding: it leaves the hierarchy and the placement candidate set;
//   * crash_node  — the node vanishes entirely: its links stop carrying
//     traffic and the network may partition.
// Link faults (fail_link/restore_link) can partition the network without
// any node dying. After every fault the middleware reconciles: deployments
// that merely reference a broken host or unroutable edge are re-planned
// (kMigrated); queries whose source or sink is down — or that currently
// admit no feasible plan — are *suspended*, not thrown. Suspended queries
// sit in a retry queue with bounded redeploy attempts; every restore_*
// re-admits the host to the hierarchy + registry, resets the attempt
// budget, and resumes whatever has become plannable (kResumed).
//
// Churn plane (DESIGN.md §14). Queries also LEAVE: undeploy() tears one
// down (ledger retraction, warm-registry eviction, stranded reuse-consumer
// repair via the transitive-dependents machinery). Arrivals pass through
// admission control (engine/admission.h): plans are priced against per-node
// and per-link headroom and per-tenant quotas, and are admitted, admitted
// degraded (replanned around saturated hosts), or rejected with
// Outcome::kRejected and a priced reason — never silently overloaded.
// Registration churn marks dirty queries; settle() replans only those,
// where reoptimize() re-clusters and replans the world.
#pragma once

#include <memory>
#include <utility>

#include "engine/admission.h"
#include "engine/simulation.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/search/workspace.h"
#include "opt/top_down.h"

namespace iflow::engine {

/// Which optimizer the middleware re-plans with. All six library
/// optimizers are available so conformance suites can drive every one of
/// them through the same fault/adaptation machinery; the heuristic
/// baselines (plan-then-deploy, relaxation, in-network) read the same
/// OptimizerEnv, so host exclusions and reuse flow to them unchanged.
enum class Algorithm {
  kTopDown,
  kBottomUp,
  kExhaustive,
  kPlanThenDeploy,
  kRelaxation,
  kInNetwork,
};

const char* to_string(Algorithm a);

/// What happened to one query during a fault/adapt cycle.
enum class Outcome : std::uint8_t {
  kMigrated,   // re-planned onto a new placement
  kAccepted,   // drifted, but re-planning could not beat the current cost
  kSuspended,  // endpoints down or no feasible plan; parked in retry queue
  kResumed,    // previously suspended, successfully re-deployed
  kRejected,   // admission control refused the query (priced reason)
};

const char* to_string(Outcome o);

struct Redeployment {
  query::QueryId query = 0;
  double planned_cost = 0.0;   // cost at original deployment time
  double drifted_cost = 0.0;   // cost under the changed network (+inf = down)
  double adapted_cost = 0.0;   // cost after re-optimization (+inf = suspended)
  Outcome outcome = Outcome::kMigrated;
};

/// One placement change of an active query, recorded at every adoption site
/// (reconcile/quarantine/rebalance/reoptimize/settle/adapt) so a running
/// engine can be told to hand operator state to the new placement instead
/// of restarting it cold (Simulation's kMigrateOps fault). `warm` is false
/// only for resume-from-suspension, where the state is legitimately gone.
struct StateMigration {
  query::QueryId query = 0;
  bool warm = true;
  struct OpMove {
    int op = 0;  // operator index in the deployment's arena order
    net::NodeId from = net::kInvalidNode;
    net::NodeId to = net::kInvalidNode;
  };
  /// Ops whose join mask survived the replan at a different node. A replan
  /// that restructured the join tree contributes no per-op moves (the new
  /// shape has no state-compatible predecessor) but is still recorded.
  std::vector<OpMove> moves;
};

class Middleware {
 public:
  /// Takes ownership of nothing: `net` and `catalog` must outlive the
  /// middleware; both are mutated by the condition-change entry points.
  Middleware(net::Network& net, query::Catalog& catalog, int max_cs,
             Algorithm algorithm, std::uint64_t seed,
             double drift_threshold = 1.2);

  /// Optimizes and records a query; reuse is on (advertisements flow).
  /// When the query's source/sink is currently down — or no feasible plan
  /// exists — the query is parked in the suspended queue instead and the
  /// result reports feasible = false. With admission constraints configured
  /// (set_admission_config / set_tenant_quota) the plan is priced first:
  /// over-capacity plans get one degraded replanning attempt around the
  /// saturated hosts, and queries that still do not fit are REJECTED —
  /// feasible = false, not parked, last_admission() carries the priced
  /// reason (Outcome::kRejected in churn-harness records).
  opt::OptimizeResult deploy(const query::Query& q);

  /// Tears down a query by id, wherever it lives: an active deployment
  /// (ledger retraction + warm-registry eviction + repair of any reuse
  /// consumer the removed provider strands — migrated or suspended, never
  /// left ungrounded) or a parked suspended entry. Returns false — a clean
  /// error, no state change — when no such query exists (double undeploy).
  /// Repairs performed on stranded consumers are appended to `repairs`
  /// when non-null.
  bool undeploy(query::QueryId id,
                std::vector<Redeployment>* repairs = nullptr);

  /// Applies a network condition change and refreshes routing + hierarchy.
  void set_link_cost(net::NodeId a, net::NodeId b, double cost_per_byte);

  /// Monitored link-quality changes: loss probability and delay jitter.
  /// Neither affects routing or planning costs — they feed the engine's
  /// reliable delivery layer — but both are system state the middleware
  /// owns, so they flow through here like every other condition change.
  void set_link_loss(net::NodeId a, net::NodeId b, double loss);
  void set_link_jitter(net::NodeId a, net::NodeId b, double jitter_ms);

  /// Gray-failure condition changes: a link or node becomes slow, lossy or
  /// flapping while staying administratively up. Quality-only (routing and
  /// planning costs unchanged — the incremental sync is free); the engine's
  /// reliable delivery layer and the health plane's probes read the state.
  /// Pass a default-constructed Degradation to clear.
  void degrade_link(net::NodeId a, net::NodeId b, const net::Degradation& d);
  void degrade_node(net::NodeId n, const net::Degradation& d);

  /// Applies a data condition change: a stream's observed rate moved.
  /// Deployed operators keep carrying the new volume; adapt() re-plans the
  /// queries whose cost drifted.
  void set_stream_rate(query::StreamId stream, double tuple_rate);

  /// A node can no longer host operators (overload, maintenance, crash of
  /// the processing service — links keep forwarding). The node leaves the
  /// hierarchy, is excluded from future placements, and every deployment
  /// with an operator or reused provider on it is re-planned immediately.
  /// Queries sourcing or sinking on the node are suspended (Outcome
  /// kSuspended), not thrown. Returns the redeployments performed.
  std::vector<Redeployment> fail_node(net::NodeId n);

  /// Full crash: the node also stops forwarding, so every incident link
  /// goes down with it and the network may partition. Routing is rebuilt,
  /// the node leaves the hierarchy, and the actives are reconciled exactly
  /// as for fail_node (plus edge-reachability checks).
  std::vector<Redeployment> crash_node(net::NodeId n);

  /// Recovers a node from either failure class: re-admits it to the
  /// network (if crashed), the hierarchy and the registry, resets the
  /// suspended queries' attempt budgets, and resumes what can be resumed.
  std::vector<Redeployment> restore_node(net::NodeId n);

  /// Takes the (a, b) link down; routing is rebuilt and actives whose data
  /// edges became unroutable are migrated or suspended.
  std::vector<Redeployment> fail_link(net::NodeId a, net::NodeId b);

  /// Brings the (a, b) link back and resumes what can be resumed.
  std::vector<Redeployment> restore_link(net::NodeId a, net::NodeId b);

  /// Per-node processing capacity, expressed as the total operator INPUT
  /// byte rate a node may host (the paper's §1.1: "node N2 may be
  /// overloaded"). 0 = unlimited (default). Also the admission
  /// controller's node budget.
  void set_node_capacity(double max_input_bytes_per_s);

  /// Full admission policy: node capacity, link utilization cap, fairness.
  /// Overrides set_node_capacity's budget (they share one knob).
  void set_admission_config(const AdmissionConfig& cfg);

  /// Registers a per-tenant quota (query count, byte budget, fairness
  /// weight). Queries carry their tenant in Query::tenant.
  void set_tenant_quota(std::uint32_t tenant, const TenantQuota& quota);

  /// Verdict of the most recent deploy() admission decision.
  const AdmissionVerdict& last_admission() const { return last_admission_; }

  /// Incremental per-node/per-link/per-tenant load accounting.
  const ResourceLedger& ledger() const { return ledger_; }

  /// Operator input load currently hosted by each node. Maintained
  /// incrementally by the ledger on deploy/undeploy/migrate/rate-change;
  /// Debug builds cross-check it against a from-scratch recompute.
  std::vector<double> node_loads() const;

  /// Detects nodes over capacity, excludes them from hosting further
  /// operators, and migrates the deployments whose operators sit there.
  /// Iterates until no node is overloaded or nothing can move. Exclusions
  /// are load-shedding only: the node stays in the hierarchy and keeps
  /// forwarding, sourcing and sinking.
  std::vector<Redeployment> rebalance_load();

  /// Health-plane quarantine: the node is excluded from hosting operators
  /// exactly like a load-shed node — it keeps forwarding, sourcing and
  /// sinking — and every active with an operator there is migrated off (a
  /// replan that would place back on the quarantined node is not adopted).
  /// Idempotent: quarantining twice returns no redeployments.
  std::vector<Redeployment> quarantine_node(net::NodeId n);

  /// Lifts a quarantine (the element survived its probation probe budget)
  /// and retries the suspended queue. Idempotent.
  std::vector<Redeployment> release_quarantine(net::NodeId n);

  const std::vector<net::NodeId>& quarantined_nodes() const {
    return quarantined_nodes_;
  }

  /// Per-node multiplicative pricing penalty from the health plane
  /// (>= 1 per node, indexed by NodeId; empty = none). Every subsequent
  /// planning environment carries it, so all optimizers steer around
  /// suspect elements before quarantine ever triggers. Optimizers planning
  /// under a penalty report planned_cost = actual (true) cost.
  void set_health_penalty(std::vector<double> penalty);

  /// Re-optimizes every active query whose cost drifted beyond the
  /// threshold, then retries the suspended queue; returns what was
  /// redeployed or resumed.
  std::vector<Redeployment> adapt();

  /// Global convergence pass: re-clusters the hierarchy from scratch
  /// (incremental repairs accumulate partition-quality drift over a long
  /// churn episode), then replans EVERY active query (drifted or not)
  /// against the others' current operators and accepts strict
  /// improvements, repeating until a fixpoint or the round budget. Where
  /// adapt() chases drift, reoptimize() recovers the reuse opportunities a
  /// staggered recovery leaves behind — queries resumed one at a time plan
  /// against whatever advertisements existed at that moment, and their
  /// planned cost equals their current cost, so adapt() never revisits
  /// them. A final joint pass re-deploys the whole workload from scratch
  /// (in query-id order) and adopts the result when cheaper, escaping the
  /// local minima single-query moves cannot (reuse chains where provider
  /// and consumer must move together). Run it after full restoration to
  /// settle the system.
  std::vector<Redeployment> reoptimize(int max_rounds = 3);

  /// Incremental settle: replans ONLY the dirty queries — those touched by
  /// registration churn (overlapping stream sets with an arrival or
  /// departure, rate changes, repaired consumers) — against the warm
  /// registry and hierarchy, adopting strict improvements. The cheap
  /// steady-state alternative to reoptimize()'s full re-cluster; run
  /// reoptimize() only to settle after major episodes. Clears the dirty
  /// set.
  std::vector<Redeployment> settle(int max_rounds = 2);

  struct SettleStats {
    std::size_t replanned = 0;  // replan() calls issued by the last settle
    std::size_t moved = 0;      // improvements adopted
    std::size_t dirty = 0;      // dirty-set size entering the last settle
  };
  const SettleStats& last_settle_stats() const { return settle_stats_; }

  /// Queries currently marked dirty for the next settle().
  std::size_t dirty_queries() const { return dirty_.size(); }

  /// Cumulative failed resume attempts (bounded-retry invariant: between
  /// two restores each suspended query fails at most max_resume_attempts
  /// times, with exponentially backed-off retries in between).
  std::uint64_t resume_failures_total() const {
    return resume_failures_total_;
  }

  /// Current total cost of all active deployments under current routing.
  double total_current_cost() const;

  const net::RoutingTables& routing() const { return *routing_; }
  const cluster::Hierarchy& hierarchy() const { return *hierarchy_; }
  const advert::Registry& registry() const { return registry_; }
  const net::Network& network() const { return *net_; }
  const query::Catalog& catalog() const { return *catalog_; }
  std::size_t active_queries() const { return active_.size(); }

  /// A query parked by a failure, waiting for recovery. `attempts` counts
  /// failed resume attempts since the last restore_* (each restore resets
  /// the budget); once it reaches the max the query only retries on the
  /// next restore. `skip` is the exponential-backoff counter: after the
  /// k-th failure the query sits out the next 2^k - 1 resume passes, so a
  /// flapping region does not turn every adapt() into O(suspended) failed
  /// replans. Restores clear both.
  struct SuspendedQuery {
    query::Query q;
    double last_planned_cost = 0.0;
    int attempts = 0;
    int skip = 0;
  };

  const std::vector<SuspendedQuery>& suspended() const { return suspended_; }
  std::size_t suspended_queries() const { return suspended_.size(); }

  /// Max resume attempts between restores (default 3, >= 1).
  void set_max_resume_attempts(int attempts);
  int max_resume_attempts() const { return max_resume_attempts_; }

  /// Nodes currently excluded from hosting operators: processing-failed,
  /// crashed, or load-shed. Sorted ascending.
  std::vector<net::NodeId> excluded_hosts() const;

  /// The environment a plan would be validated/planned against right now
  /// (exposed for the chaos harness and external validators).
  opt::OptimizerEnv planning_env() { return env(); }

  /// Planner workspace (exposed so harnesses can pin the thread count for
  /// determinism checks).
  opt::PlanWorkspace& workspace() { return workspace_; }

  /// Read-only view of one active query for monitoring/validation.
  struct ActiveView {
    const query::Query* query = nullptr;
    const query::Deployment* deployment = nullptr;
    double planned_cost = 0.0;
  };
  std::vector<ActiveView> active_views() const;

  /// Per-active-query delivery accounting read out of a (finished) reliable
  /// simulation the actives were deployed into — the middleware's
  /// monitoring surface for the engine's delivery semantics.
  std::vector<std::pair<query::QueryId, DeliveryStats>> collect_delivery_stats(
      const Simulation& sim) const;

  /// Placement changes recorded since the last clear, in adoption order —
  /// the feed a harness replays into the engine as state-handoff (warm) or
  /// cold-restart migrations.
  const std::vector<StateMigration>& state_migrations() const {
    return state_migrations_;
  }
  void clear_state_migrations() { state_migrations_.clear(); }

  /// Current deployments of all active queries (monitoring, diagnostics).
  std::vector<const query::Deployment*> deployments() const {
    std::vector<const query::Deployment*> out;
    out.reserve(active_.size());
    for (const Active& a : active_) out.push_back(&a.deployment);
    return out;
  }

 private:
  struct Active {
    query::Query q;
    query::Deployment deployment;
    double planned_cost = 0.0;
    /// The footprint this deployment currently holds in the ledger (the
    /// exact amounts to retract on undeploy/migrate even after rates or
    /// routes moved).
    DeploymentFootprint footprint;
  };

  opt::OptimizerEnv env();
  std::unique_ptr<opt::Optimizer> make_optimizer();
  void rebuild_views();
  void rebuild_routing();

  /// True when n cannot host, source or sink right now (crashed or
  /// processing-failed; overload exclusion is hosting-only).
  bool host_down(net::NodeId n) const;

  /// Every source stream node and the sink are up.
  bool endpoints_healthy(const query::Query& q) const;

  /// No element on a down host and every data edge still routable.
  bool deployment_intact(const Active& a) const;

  /// True when the deployment hosts an op or derived unit on a host the
  /// planner is supposed to avoid (down, overloaded or quarantined). The
  /// restricted search's unrestricted fallback can hand such plans back;
  /// adoption sites must reject them or the validator's excluded-host
  /// sweep flags the adopted deployment.
  bool deployment_on_excluded(const query::Deployment& d) const;

  /// Every derived leaf unit still has a live provider among the *other*
  /// actives: an operator (or re-exported non-aggregated result) with the
  /// same global stream set at the unit's node. Migrating a provider can
  /// strand its consumers even though every host is healthy.
  bool derived_units_bound(const Active& a) const;

  /// True when active `b` exports the global stream set `want` at `loc`:
  /// a deployed operator there, or (non-aggregated) its sink re-exporting
  /// the full result.
  bool exports_at(const Active& b, net::NodeId loc,
                  const std::vector<query::StreamId>& want) const;

  /// Flags every active whose derived units transitively draw on `root`'s
  /// results (root itself included), indexed like `active_`. replan() must
  /// not reuse these — doing so would create an ungrounded reuse cycle.
  std::vector<bool> transitive_dependents(const Active& root) const;

  /// Rebuilds the advertisement registry from the active deployments.
  /// Only reoptimize()'s joint adoption uses this; steady-state churn
  /// maintains the registry warm (advertise on deploy/resume,
  /// remove_origin + re-advertise on migrate, remove_origin on
  /// suspend/undeploy) and Debug builds cross-check the warm contents
  /// against this rebuild.
  void refresh_registry();

  /// Prices a's deployment under current rates/routes, applies it to the
  /// ledger and records the footprint on the Active.
  void ledger_add(Active& a);
  /// Retracts a's recorded footprint from the ledger.
  void ledger_remove(Active& a);
  /// Swaps a's registry advertisements and ledger footprint after its
  /// deployment changed (migration), and records the placement diff against
  /// `before` as a warm StateMigration.
  void on_migrated(Active& a, const query::Deployment& before);
  /// Appends the placement diff of one adopted replan to the migration
  /// feed.
  void record_migration(query::QueryId q, const query::Deployment& before,
                        const query::Deployment& after, bool warm);
  /// Marks every active whose source-stream set intersects q's as dirty
  /// for the next settle() — the reuse neighborhood a registration or
  /// unregistration can improve or degrade.
  void mark_dirty_overlap(const query::Query& q);
  void mark_dirty(query::QueryId id);
  /// Debug-only consistency checks: warm registry vs full rebuild and
  /// ledger node loads vs from-scratch recompute.
  void debug_check_warm_state() const;
  std::vector<double> node_loads_recomputed() const;

  /// Post-fault sweep: migrates or suspends broken actives, refreshes the
  /// registry, and (on recovery paths) retries the suspended queue.
  std::vector<Redeployment> reconcile(bool try_resume);

  /// Retries suspended queries with remaining attempt budget.
  void resume_pass(std::vector<Redeployment>& out);

  net::Network* net_;
  query::Catalog* catalog_;
  int max_cs_;
  Algorithm algorithm_;
  std::uint64_t seed_;  // hierarchy rebuilds derive pure per-version Prngs
  double drift_threshold_;

  /// Re-optimizes one active query against everyone else's operators;
  /// returns the candidate result (which the caller may accept).
  opt::OptimizeResult replan(const Active& a);

  std::unique_ptr<net::RoutingTables> routing_;
  std::unique_ptr<cluster::Hierarchy> hierarchy_;
  /// Planner scratch + worker pool reused across every deploy/adapt cycle.
  opt::PlanWorkspace workspace_;
  advert::Registry registry_;
  std::vector<Active> active_;
  std::vector<SuspendedQuery> suspended_;
  std::vector<net::NodeId> failed_nodes_;
  std::vector<net::NodeId> overloaded_nodes_;  // load-shed, still forwarding
  std::vector<net::NodeId> quarantined_nodes_;  // health plane, hosting-only
  /// Health-plane pricing penalty (empty = none); env() hands a pointer to
  /// this vector to every planning environment.
  std::vector<double> health_penalty_;
  double node_capacity_ = 0.0;                 // 0 = unlimited
  int max_resume_attempts_ = 3;
  /// Seeded jitter for the suspended-resume exponential backoff, so a
  /// cluster-wide restore staggers the retry stampede deterministically.
  Prng backoff_prng_;

  AdmissionController admission_;
  ResourceLedger ledger_;
  AdmissionVerdict last_admission_;
  /// Extra exclusions for the degraded admission replan only (env() adds
  /// them to OptimizerEnv::excluded_sites). Empty outside deploy().
  std::vector<net::NodeId> admission_excluded_;
  std::vector<query::QueryId> dirty_;  // sorted unique
  SettleStats settle_stats_;
  std::uint64_t resume_failures_total_ = 0;
  std::vector<StateMigration> state_migrations_;
};

}  // namespace iflow::engine
