#include "engine/admission.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace iflow::engine {

namespace {

/// Small relative tolerance so repeated signed float updates never flip an
/// exactly-at-capacity plan into a rejection.
constexpr double kSlack = 1e-9;

std::string format_rate(double bytes_per_s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", bytes_per_s);
  return std::string(buf);
}

void add_sorted(std::vector<std::pair<std::uint32_t, double>>& acc,
                std::uint32_t key, double value) {
  for (auto& kv : acc) {
    if (kv.first == key) {
      kv.second += value;
      return;
    }
  }
  acc.emplace_back(key, value);
}

}  // namespace

const char* to_string(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmit: return "admit";
    case AdmissionDecision::kAdmitDegraded: return "admit-degraded";
    case AdmissionDecision::kReject: return "reject";
  }
  return "unknown";
}

DeploymentFootprint footprint(const query::Deployment& d,
                              const query::RateModel& rates,
                              const net::RoutingTables& rt,
                              const net::Network& net) {
  DeploymentFootprint fp;
  std::vector<std::pair<std::uint32_t, double>> nodes;
  // Charge every data edge: operator inputs onto their hosting node (the
  // node-load metric) and the traversed links of the current cost-optimal
  // route (the link-load metric). Matches Middleware::node_loads() pricing:
  // live RateModel, not the plan-time snapshot.
  const auto charge_edge = [&](net::NodeId from, net::NodeId to,
                               double bytes) {
    if (from == to || bytes <= 0.0) return;
    const std::vector<net::NodeId> path = rt.cost_path(from, to);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const std::uint32_t link = net.cheapest_usable_link(path[i], path[i + 1]);
      if (link == net::kInvalidLink) continue;  // route raced a fault
      add_sorted(fp.link_bytes, link, bytes);
    }
  };
  for (const query::DeployedOp& op : d.ops) {
    for (int child : {op.left, op.right}) {
      const query::Mask m = query::child_mask(d, child);
      const double bytes = rates.bytes_rate(m);
      add_sorted(nodes, static_cast<std::uint32_t>(op.node), bytes);
      fp.total_input_bytes += bytes;
      charge_edge(query::child_location(d, child), op.node, bytes);
    }
  }
  // Root → sink delivery edge loads links (but no hosting node: the sink
  // consumes, it does not host an operator input in the node-load metric).
  query::Mask all = 0;
  for (const query::LeafUnit& u : d.units) all |= u.mask;
  double delivered = rates.bytes_rate(all);
  if (d.aggregate.enabled()) {
    delivered = std::min(rates.tuple_rate(all), d.aggregate.out_tuple_rate()) *
                d.aggregate.out_width;
  }
  charge_edge(d.root_node(), d.sink, delivered);

  std::sort(nodes.begin(), nodes.end());
  fp.node_bytes.reserve(nodes.size());
  for (const auto& [n, b] : nodes) {
    fp.node_bytes.emplace_back(static_cast<net::NodeId>(n), b);
  }
  std::sort(fp.link_bytes.begin(), fp.link_bytes.end());
  return fp;
}

void ResourceLedger::reset(std::size_t node_count, std::size_t link_count) {
  node_load_.assign(node_count, 0.0);
  link_load_.assign(link_count, 0.0);
  tenant_bytes_.clear();
  tenant_queries_.clear();
  total_bytes_ = 0.0;
}

void ResourceLedger::apply(const DeploymentFootprint& fp, std::uint32_t tenant,
                           int sign) {
  IFLOW_CHECK(sign == 1 || sign == -1);
  for (const auto& [node, bytes] : fp.node_bytes) {
    IFLOW_CHECK(static_cast<std::size_t>(node) < node_load_.size());
    node_load_[node] += sign * bytes;
    if (sign < 0 && node_load_[node] < 0.0) node_load_[node] = 0.0;
  }
  for (const auto& [link, bytes] : fp.link_bytes) {
    // Links appended after this ledger was sized (topology growth) are
    // simply not tracked until the next reset.
    if (static_cast<std::size_t>(link) >= link_load_.size()) continue;
    link_load_[link] += sign * bytes;
    if (sign < 0 && link_load_[link] < 0.0) link_load_[link] = 0.0;
  }
  tenant_bytes_[tenant] += sign * fp.total_input_bytes;
  if (tenant_bytes_[tenant] < 0.0) tenant_bytes_[tenant] = 0.0;
  total_bytes_ += sign * fp.total_input_bytes;
  if (total_bytes_ < 0.0) total_bytes_ = 0.0;
}

void ResourceLedger::count_query(std::uint32_t tenant, int sign) {
  IFLOW_CHECK(sign == 1 || sign == -1);
  std::size_t& n = tenant_queries_[tenant];
  if (sign > 0) {
    ++n;
  } else {
    IFLOW_CHECK(n > 0);
    --n;
  }
}

double ResourceLedger::tenant_bytes(std::uint32_t tenant) const {
  const auto it = tenant_bytes_.find(tenant);
  return it == tenant_bytes_.end() ? 0.0 : it->second;
}

std::size_t ResourceLedger::tenant_queries(std::uint32_t tenant) const {
  const auto it = tenant_queries_.find(tenant);
  return it == tenant_queries_.end() ? 0 : it->second;
}

double fair_share(const std::map<std::uint32_t, double>& demands,
                  const std::map<std::uint32_t, TenantQuota>& quotas,
                  double budget, std::uint32_t tenant) {
  const auto weight_of = [&](std::uint32_t t) {
    const auto it = quotas.find(t);
    return it == quotas.end() ? 1.0 : it->second.weight;
  };
  // Water-filling: repeatedly grant every tenant its weighted slice of the
  // remaining budget; tenants demanding less than their slice are satisfied
  // exactly and donate the surplus. Terminates because each round either
  // satisfies a tenant or stops. Iteration order over std::map is
  // deterministic (tenant id ascending).
  std::map<std::uint32_t, double> remaining_demand = demands;
  std::map<std::uint32_t, double> granted;
  double remaining = budget;
  bool progress = true;
  while (progress && !remaining_demand.empty() && remaining > 0.0) {
    progress = false;
    double weight_sum = 0.0;
    for (const auto& [t, d] : remaining_demand) weight_sum += weight_of(t);
    if (weight_sum <= 0.0) break;
    for (auto it = remaining_demand.begin(); it != remaining_demand.end();) {
      const double slice = remaining * weight_of(it->first) / weight_sum;
      if (it->second <= slice * (1.0 + kSlack)) {
        granted[it->first] = it->second;
        remaining -= it->second;
        it = remaining_demand.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  // Unsatisfied tenants split what is left by weight.
  double weight_sum = 0.0;
  for (const auto& [t, d] : remaining_demand) weight_sum += weight_of(t);
  for (const auto& [t, d] : remaining_demand) {
    granted[t] = weight_sum > 0.0
                     ? std::max(0.0, remaining) * weight_of(t) / weight_sum
                     : 0.0;
  }
  const auto it = granted.find(tenant);
  return it == granted.end() ? 0.0 : it->second;
}

void AdmissionController::set_quota(std::uint32_t tenant,
                                    const TenantQuota& quota) {
  IFLOW_CHECK(quota.weight > 0.0);
  IFLOW_CHECK(quota.max_input_bytes_per_s >= 0.0);
  quotas_[tenant] = quota;
}

const TenantQuota& AdmissionController::quota(std::uint32_t tenant) const {
  const auto it = quotas_.find(tenant);
  return it == quotas_.end() ? default_quota_ : it->second;
}

AdmissionVerdict AdmissionController::precheck(
    std::uint32_t tenant, const ResourceLedger& ledger) const {
  AdmissionVerdict v;
  const TenantQuota& q = quota(tenant);
  if (ledger.tenant_queries(tenant) >= q.max_queries) {
    v.decision = AdmissionDecision::kReject;
    v.reason = "tenant " + std::to_string(tenant) + " at query quota (" +
               std::to_string(q.max_queries) + ")";
  }
  return v;
}

AdmissionVerdict AdmissionController::price(const DeploymentFootprint& fp,
                                            std::uint32_t tenant,
                                            const ResourceLedger& ledger,
                                            const net::Network& net,
                                            bool degraded) const {
  AdmissionVerdict v;
  // Per-node input-byte headroom.
  if (config_.node_capacity > 0.0) {
    const std::vector<double>& load = ledger.node_load();
    for (const auto& [node, bytes] : fp.node_bytes) {
      const double after = load[node] + bytes;
      if (after > config_.node_capacity * (1.0 + kSlack)) {
        v.saturated_nodes.push_back(node);
        v.worst_node_overload = std::max(
            v.worst_node_overload, after - config_.node_capacity);
      }
    }
  }
  // Per-link bandwidth headroom (bandwidth_bps is bits/s; loads are
  // bytes/s). Saturated link endpoints join the exclusion set so a degraded
  // replan places around the hot edge.
  if (config_.link_utilization_cap > 0.0) {
    const std::vector<double>& load = ledger.link_load();
    for (const auto& [link, bytes] : fp.link_bytes) {
      if (static_cast<std::size_t>(link) >= load.size()) continue;
      const net::Link& l = net.links()[link];
      if (l.bandwidth_bps <= 0.0) continue;
      const double cap = l.bandwidth_bps / 8.0 * config_.link_utilization_cap;
      const double after = load[link] + bytes;
      if (after > cap * (1.0 + kSlack)) {
        v.worst_link_overload = std::max(v.worst_link_overload, after - cap);
        v.saturated_nodes.push_back(l.a);
        v.saturated_nodes.push_back(l.b);
      }
    }
  }
  std::sort(v.saturated_nodes.begin(), v.saturated_nodes.end());
  v.saturated_nodes.erase(
      std::unique(v.saturated_nodes.begin(), v.saturated_nodes.end()),
      v.saturated_nodes.end());

  const TenantQuota& q = quota(tenant);
  const double tenant_after = ledger.tenant_bytes(tenant) +
                              fp.total_input_bytes;
  if (tenant_after > q.max_input_bytes_per_s * (1.0 + kSlack)) {
    v.decision = AdmissionDecision::kReject;
    v.reason = "tenant " + std::to_string(tenant) + " byte quota: " +
               format_rate(tenant_after) + " B/s demanded > " +
               format_rate(q.max_input_bytes_per_s) + " B/s allowed";
    return v;
  }
  // Weighted max-min fairness, only when the cluster is actually contended:
  // uncontended clusters admit everything the capacities allow.
  if (config_.fairness && config_.node_capacity > 0.0 &&
      !ledger.node_load().empty()) {
    const double budget =
        config_.node_capacity * static_cast<double>(ledger.node_load().size());
    const double total_after = ledger.total_bytes() + fp.total_input_bytes;
    if (total_after > budget * (1.0 + kSlack)) {
      std::map<std::uint32_t, double> demands = ledger.tenant_usage();
      demands[tenant] += fp.total_input_bytes;
      const double share = fair_share(demands, quotas_, budget, tenant);
      if (tenant_after > share * (1.0 + kSlack)) {
        v.decision = AdmissionDecision::kReject;
        v.reason = "fairness: tenant " + std::to_string(tenant) +
                   " would hold " + format_rate(tenant_after) +
                   " B/s > fair share " + format_rate(share) +
                   " B/s of contended budget " + format_rate(budget) + " B/s";
        return v;
      }
    }
  }
  if (!v.saturated_nodes.empty()) {
    v.decision = AdmissionDecision::kReject;
    v.reason = "capacity: ";
    if (v.worst_node_overload > 0.0) {
      v.reason += "node overload " + format_rate(v.worst_node_overload) +
                  " B/s above " + format_rate(config_.node_capacity) + " B/s";
    }
    if (v.worst_link_overload > 0.0) {
      if (v.worst_node_overload > 0.0) v.reason += "; ";
      v.reason += "link overload " + format_rate(v.worst_link_overload) +
                  " B/s above headroom";
    }
    v.reason += " across " + std::to_string(v.saturated_nodes.size()) +
                " saturated element(s)";
    return v;
  }
  v.decision = degraded ? AdmissionDecision::kAdmitDegraded
                        : AdmissionDecision::kAdmit;
  return v;
}

}  // namespace iflow::engine
