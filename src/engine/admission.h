// Admission control for the multi-tenant churn plane (DESIGN.md §14).
//
// The middleware's load story used to be reactive only: deploy whatever the
// optimizer returns, notice overload later, shed via rebalance_load(). Under
// continuous registration churn that is not robust — a flash crowd from one
// tenant can saturate nodes and links before any rebalance runs. Following
// Benoit et al. ("Resource Allocation for Multiple Concurrent In-Network
// Stream-Processing Applications", PAPERS.md), every incoming deployment is
// instead *priced* against explicit capacities before it is accepted:
//
//   * per-node input-byte capacity (same metric as Middleware::node_loads:
//     the summed byte rate of every operator input edge hosted by a node);
//   * per-link bandwidth headroom (each data edge of a plan is charged along
//     its current cost-optimal route against Link::bandwidth_bps scaled by
//     a utilization cap);
//   * per-tenant quotas (concurrent query count, total input bytes/s) and
//     weighted max-min fairness: when the cluster is contended, a tenant
//     already holding more than its water-filled fair share is rejected
//     rather than allowed to starve the rest.
//
// Verdicts are admit / admit-degraded (a second planning pass around the
// saturated nodes produced a plan that fits the remaining headroom) /
// reject (Outcome::kRejected with a priced reason string).
//
// The ResourceLedger is the incremental accounting structure behind all of
// this: deploy/undeploy/migrate apply a deployment's footprint with a sign
// instead of re-pricing every active from scratch (the old node_loads()
// behavior, now a Debug cross-check).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/routing.h"
#include "query/plan.h"
#include "query/rates.h"

namespace iflow::engine {

/// Per-tenant admission limits. Defaults are unlimited: single-tenant
/// workloads and tests that never touch quotas see no behavior change.
struct TenantQuota {
  /// Max-min fairness weight (> 0). A tenant with weight 2 is entitled to
  /// twice the contended-cluster share of a weight-1 tenant.
  double weight = 1.0;
  /// Hard cap on concurrently active+suspended queries.
  std::size_t max_queries = std::numeric_limits<std::size_t>::max();
  /// Hard cap on the tenant's summed operator-input byte rate.
  double max_input_bytes_per_s = std::numeric_limits<double>::infinity();
};

struct AdmissionConfig {
  /// Per-node input-byte capacity (same semantics as
  /// Middleware::set_node_capacity). <= 0 = unlimited.
  double node_capacity = 0.0;
  /// Fraction of each link's bandwidth (bandwidth_bps / 8, i.e. bytes/s)
  /// admission may fill. <= 0 = link capacity not enforced (default:
  /// stub-topology bandwidths model serialization delay, not admission
  /// budgets, so link pricing is opt-in). Links with bandwidth_bps <= 0
  /// are treated as uncapacitated.
  double link_utilization_cap = 0.0;
  /// Enforce weighted max-min fair shares across tenants under contention.
  bool fairness = true;
};

enum class AdmissionDecision : std::uint8_t {
  kAdmit,
  kAdmitDegraded,  // fits only after replanning around saturated hosts
  kReject,
};

const char* to_string(AdmissionDecision d);

/// Priced admission verdict. On rejection `reason` names the binding
/// constraint and by how much it would be violated (bytes/s).
struct AdmissionVerdict {
  AdmissionDecision decision = AdmissionDecision::kAdmit;
  std::string reason;
  /// Nodes this plan would push over capacity (sorted). A degraded replan
  /// excludes exactly these.
  std::vector<net::NodeId> saturated_nodes;
  double worst_node_overload = 0.0;  // bytes/s above node capacity
  double worst_link_overload = 0.0;  // bytes/s above link headroom
};

/// Resource demand of one deployment: per-node operator-input bytes, per-link
/// transit bytes along current cost-optimal routes, and the total input byte
/// rate (the tenant-usage metric). Node demand deliberately matches the
/// legacy Middleware::node_loads() pricing (live RateModel, input edges of
/// every op) so the incremental ledger can be cross-checked against it.
struct DeploymentFootprint {
  std::vector<std::pair<net::NodeId, double>> node_bytes;  // sorted by node
  std::vector<std::pair<std::uint32_t, double>> link_bytes;  // sorted by link
  double total_input_bytes = 0.0;
};

DeploymentFootprint footprint(const query::Deployment& d,
                              const query::RateModel& rates,
                              const net::RoutingTables& rt,
                              const net::Network& net);

/// Incremental per-node / per-link / per-tenant load accounting. All updates
/// are signed footprint applications; the from-scratch recompute only runs
/// as a Debug consistency CHECK.
class ResourceLedger {
 public:
  void reset(std::size_t node_count, std::size_t link_count);

  /// Applies (sign=+1) or retracts (sign=-1) a deployment's footprint,
  /// charged to `tenant`.
  void apply(const DeploymentFootprint& fp, std::uint32_t tenant, int sign);

  /// Registers / unregisters a query slot for `tenant` (admitted queries,
  /// including suspended ones that still hold their slot).
  void count_query(std::uint32_t tenant, int sign);

  const std::vector<double>& node_load() const { return node_load_; }
  const std::vector<double>& link_load() const { return link_load_; }

  double tenant_bytes(std::uint32_t tenant) const;
  std::size_t tenant_queries(std::uint32_t tenant) const;
  double total_bytes() const { return total_bytes_; }

  /// Deterministic (tenant-ordered) view for fairness water-filling.
  const std::map<std::uint32_t, double>& tenant_usage() const {
    return tenant_bytes_;
  }

 private:
  std::vector<double> node_load_;
  std::vector<double> link_load_;
  std::map<std::uint32_t, double> tenant_bytes_;
  std::map<std::uint32_t, std::size_t> tenant_queries_;
  double total_bytes_ = 0.0;
};

/// Weighted max-min (water-filling) fair share of a cluster-wide byte budget
/// among tenants with the given demands and weights. Returns the share for
/// `tenant`. Demands are what each tenant would use unconstrained; tenants
/// demanding less than their entitlement donate the surplus to the rest.
double fair_share(const std::map<std::uint32_t, double>& demands,
                  const std::map<std::uint32_t, TenantQuota>& quotas,
                  double budget, std::uint32_t tenant);

/// Stateless admission policy: prices candidate plans against a ledger.
class AdmissionController {
 public:
  void set_config(const AdmissionConfig& cfg) { config_ = cfg; }
  const AdmissionConfig& config() const { return config_; }

  void set_quota(std::uint32_t tenant, const TenantQuota& quota);
  const TenantQuota& quota(std::uint32_t tenant) const;
  const std::map<std::uint32_t, TenantQuota>& quotas() const {
    return quotas_;
  }

  /// Pre-plan gate: per-tenant query-count quota. Returns a kReject verdict
  /// or kAdmit when the tenant may proceed to planning.
  AdmissionVerdict precheck(std::uint32_t tenant,
                            const ResourceLedger& ledger) const;

  /// Prices a candidate plan's footprint against the ledger's headroom,
  /// the tenant's byte quota, and (under contention) the tenant's weighted
  /// max-min fair share. `degraded` marks this as the second (host-excluded)
  /// planning attempt: a fitting plan is then reported kAdmitDegraded.
  AdmissionVerdict price(const DeploymentFootprint& fp, std::uint32_t tenant,
                         const ResourceLedger& ledger, const net::Network& net,
                         bool degraded) const;

 private:
  AdmissionConfig config_;
  std::map<std::uint32_t, TenantQuota> quotas_;
  TenantQuota default_quota_;
};

}  // namespace iflow::engine
