// Discrete-event stream-processing engine — the execution substrate standing
// in for the IFLOW prototype (see DESIGN.md, substitutions).
//
// A Simulation instantiates Deployments as operator graphs on the simulated
// network and executes them: sources emit tuples at their catalog rates,
// windowed symmetric-hash joins match tuples by synthetic join keys whose
// collision probability equals the catalog selectivity, and every tuple
// transfer is routed along the cost-optimal path, charging bytes to each
// physical link it crosses. The measured per-unit-time cost
// (sum over links of bytes x link cost / duration) is directly comparable
// to the optimizer's analytic deployment cost; integration tests assert
// they agree.
//
// Join semantics: both inputs keep a sliding window of `window_s` seconds; a
// new tuple probes the opposite window and emits one output per matching
// pair, so a pair matches iff it arrives within `window_s` of each other.
// With window_s = 0.5 the expected output rate of A ⋈ B is
// rate_A x rate_B x selectivity — exactly the analytic RateModel.
//
// Operator sharing: a Deployment leaf unit marked `derived` binds to the
// operator of an earlier deployment producing the same stream set at the
// same node, so reused operators stream their output once per consumer and
// incur no upstream traffic — the engine-level realisation of the paper's
// stream advertisements. Containment reuse (LeafUnit::residual_filter < 1)
// interposes a selection at the provider. Limitation: producers are keyed
// by (stream set, node); two co-located operators over the same streams
// with different filters are not distinguished — the first deployment wins.
#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/prng.h"
#include "net/routing.h"
#include "query/plan.h"
#include "query/rates.h"

namespace iflow::engine {

/// A mid-execution network fault, applied at `time` while the event loop
/// runs. Faults mutate a private copy of the network: in-flight tuples
/// whose remaining route crosses a dead link (or whose destination died)
/// are dropped, and sources on dead nodes pause until restored.
struct SimFault {
  enum class Kind : std::uint8_t {
    kFailLink,
    kRestoreLink,
    kCrashNode,
    kRestoreNode,
    kSetLinkLoss,    // sets the (a, b) loss probability to `value`
    kSetLinkJitter,  // sets the (a, b) jitter bound to `value` ms
    kMigrateOps,     // moves join/filter/aggregate instances from a to b
  };
  double time = 0.0;
  Kind kind = Kind::kCrashNode;
  net::NodeId a = net::kInvalidNode;  // the node, or the link's first end
  net::NodeId b = net::kInvalidNode;  // the link's second end (links only)
  double value = 0.0;                 // loss probability or jitter ms
};

/// Coordinated checkpoint/recovery plane (DESIGN.md §16). Requires the
/// reliable data plane: epoch barriers are cuts in each channel's sequence
/// space, and recovery replays the channels' ack-trimmed retention buffers.
///
/// Protocol: at every `interval_s` boundary a barrier event snapshots all
/// sources, which stamps a cut (= next_seq) on their output channels; an
/// operator snapshots once every input channel has delivered exactly its
/// cut prefix (tuples at or past a cut are acked but buffered aside until
/// the operator snapshots, so the dedup floor meets the cut bit-exactly),
/// then stamps cuts on its own outputs — the barrier cascades to the sinks
/// and the epoch commits when every instance has snapshotted. At the cut
/// the receiver's out-of-order set is empty and the sender's next_seq
/// equals the floor, so the per-channel snapshot is the cut alone.
/// Channels retain every tuple sent at or past the last committed cut
/// (acked or not); commit trims the retention to the new cuts.
///
/// Recovery on kRestoreNode rolls the crashed node's instances plus all
/// transitive downstream consumers (through the sinks, whose delivery
/// counters revert) back to the committed epoch. Channels inside the
/// region restart their sequence space at the cut; boundary channels
/// (live sender, rolled-back receiver) replay their retention. Partial
/// rollback is unsound here: replay re-interleaves join inputs, so a
/// non-rolled-back consumer would dedup replayed sequence numbers whose
/// content differs from the original delivery.
struct CheckpointConfig {
  /// Coordinated snapshots + rollback recovery + warm migration state.
  bool enabled = false;
  /// Crashes wipe on-node operator state (join/aggregate windows, queues).
  /// Off by default: the legacy model assumes short crashes keep state.
  bool volatile_state = false;
  /// Barrier period; one epoch is in flight at a time.
  double interval_s = 5.0;
  /// Replicas of the in-memory snapshot store (byte accounting only).
  int replicas = 2;
};

/// Checkpoint-plane accounting: committed epochs, snapshot bytes (replica
///-multiplied), barrier latency (commit minus barrier injection), and the
/// rollback/replay work done by recoveries.
struct SnapshotStats {
  std::int64_t epochs_committed = 0;
  std::int64_t epochs_aborted = 0;  // barrier in flight when a fault hit
  double bytes_last = 0.0;
  double bytes_total = 0.0;
  double bytes_max = 0.0;
  double barrier_latency_sum_s = 0.0;
  double barrier_latency_max_s = 0.0;
  std::int64_t recoveries = 0;
  std::uint64_t replayed_tuples = 0;  // retention re-transmissions
  /// Rollback depth: restore time minus the committed barrier time — the
  /// work a recovery has to redo.
  double recovery_latency_sum_s = 0.0;
  double recovery_latency_max_s = 0.0;
  std::size_t retained_high_water = 0;  // max retention entries, any channel
};

/// What a bounded operator input queue does when an admitted tuple would
/// exceed the capacity.
enum class OverflowPolicy : std::uint8_t {
  kBackpressure,  // refuse (no ack): the sender retries and slows down
  kDropOldest,    // shed the oldest queued tuple (freshest results win)
  kDropNewest,    // shed the arriving tuple (load shedding at the door)
};

/// Parameters of the reliable delivery layer (ack/retransmit, bounded
/// queues, replay buffers). Disabled by default: the legacy fire-and-forget
/// data plane remains the model-validation baseline.
///
/// Determinism contract: with `enabled`, the data plane draws loss and
/// jitter from a dedicated Prng stream and replaces the order-sensitive
/// randomness of operators (filter passes) with content hashes, so two runs
/// of the same seed that differ only in link loss/jitter emit the same
/// source tuples and — provided every delivery delay stays under
/// `lateness_s` and nothing exhausts the retry budget — deliver the same
/// per-query result counts (at-least-once + dedup = exactly-once).
struct ReliabilityConfig {
  bool enabled = false;
  /// Initial retransmit timeout; doubles (capped) on every retry.
  double ack_timeout_s = 0.05;
  double backoff_factor = 2.0;
  double max_backoff_s = 0.4;
  /// Retransmissions per tuple before it counts as lost-after-retries.
  int max_retries = 12;
  /// Max un-acked tuples in flight per producer->consumer channel; excess
  /// waits in the sender's replay buffer (ack-trimmed upstream buffering).
  std::size_t window = 64;
  /// Bounded input queue capacity per operator; 0 = unbounded. Only
  /// meaningful with service_s > 0 (instantaneous operators never queue).
  std::size_t queue_capacity = 0;
  OverflowPolicy overflow = OverflowPolicy::kBackpressure;
  /// Per-tuple processing time of non-source operators.
  double service_s = 0.0;
  /// Event-time slack: joins retain partners and aggregates hold windows
  /// open this much longer, so tuples delayed by retransmission still meet
  /// the partners they would have met loss-free.
  double lateness_s = 3.0;
  /// Sources stop emitting this long before the horizon so in-flight and
  /// retransmitted tuples settle; keep drain_s > lateness_s.
  double drain_s = 5.0;
};

/// Per-channel reliability telemetry (reliable mode only) — the health
/// plane's raw signal. Every counter is per producer→consumer data edge:
/// ack round-trip samples measured against the clean-network expectation
/// (propagation + serialisation + ack return with no degradation, no
/// jitter, no queueing), retransmission counts, and the cost-optimal path
/// the channel's tuples currently cross. In a clean run measured RTT
/// equals the expectation exactly, so every derived signal is zero — the
/// foundation of the detector's zero-false-positive contract.
struct ChannelTelemetry {
  net::NodeId from = net::kInvalidNode;
  net::NodeId to = net::kInvalidNode;
  query::QueryId query = 0;
  /// Cost-optimal from→to route, inclusive; empty for co-located edges.
  std::vector<net::NodeId> path;
  std::uint64_t sent = 0;         // transmissions (first + re)
  std::uint64_t retransmits = 0;  // retransmissions among `sent`
  std::uint64_t lost = 0;         // lost after exhausting the retry budget
  std::uint64_t rtt_samples = 0;  // acked transmissions
  double rtt_sum_ms = 0.0;
  double expected_rtt_sum_ms = 0.0;  // clean-network model of the same acks
  std::size_t max_queue_depth = 0;   // consumer's input-queue high-water
};

/// Per-query delivery-semantics accounting (reliable mode only).
struct DeliveryStats {
  std::uint64_t delivered = 0;    // results accepted at the sink
  std::uint64_t shed = 0;         // dropped by queue overflow policy
  std::uint64_t lost = 0;         // lost after exhausting the retry budget
  std::uint64_t duplicates = 0;   // retransmit duplicates suppressed
  std::uint64_t retransmits = 0;  // retransmissions sent
  double goodput_tps = 0.0;       // delivered results per second
  double data_bytes = 0.0;        // link bytes of first transmissions
  double retransmit_bytes = 0.0;  // link bytes of retransmissions
  std::size_t max_queue_depth = 0;
  /// High-water of the receiver dedup out-of-order set (max over the
  /// query's channels) — bounded by the sliding window when compaction
  /// against the floor works.
  std::size_t seen_high_water = 0;
  /// Checkpoint overhead attributed to this query (zeros when disabled).
  std::size_t retained_high_water = 0;  // max retention entries per channel
  double snapshot_bytes = 0.0;          // replica-multiplied, all epochs
};

struct EngineConfig {
  double duration_s = 30.0;
  /// Sliding window of the symmetric hash joins. 0.5 s makes measured join
  /// rates match the analytic model (see file comment).
  double window_s = 0.5;
  /// Poisson arrivals when true; evenly spaced (with a random phase)
  /// otherwise — useful for low-variance model-validation runs.
  bool poisson = true;
  /// Must match the RateModel projection used when planning.
  double projection_factor = 1.0;
  /// Optional time-varying source rates (scenario rate curves): multiplier
  /// applied to a stream's catalog rate at simulation time t. Must be a
  /// pure function so runs stay deterministic; values are clamped to a
  /// small positive floor so source clocks keep ticking through troughs.
  /// Null = constant catalog rates.
  std::function<double(query::StreamId, double)> rate_factor;
  ReliabilityConfig reliability;
  /// Checkpoint/recovery plane; `enabled` requires reliability.enabled.
  CheckpointConfig checkpoint;
};

/// A tuple flowing through the system: the base streams it joins and, per
/// constituent, one synthetic join key per catalog stream.
struct Tuple {
  std::vector<query::StreamId> constituents;  // sorted
  std::vector<std::uint32_t> keys;  // constituents.size() × stream_count
  double width = 0.0;               // bytes
  /// Simulation time the freshest constituent was emitted; sink arrival
  /// minus this is the result's end-to-end latency.
  double born = 0.0;
};

/// Per-operator runtime counters (observability / load analysis).
struct OperatorStats {
  std::string kind;  // source | join | filter | aggregate | sink
  net::NodeId node = net::kInvalidNode;
  std::vector<query::StreamId> streams;
  std::uint64_t tuples_in = 0;
  std::uint64_t tuples_sent = 0;  // copies shipped to consumers
  double bytes_sent = 0.0;
};
using TuplePtr = std::shared_ptr<const Tuple>;

class Simulation {
 public:
  Simulation(const net::Network& net, const net::RoutingTables& rt,
             const query::Catalog& catalog, const EngineConfig& cfg,
             std::uint64_t seed);

  /// Instantiates a deployment. Derived leaf units bind to operators of
  /// earlier deployments (matched by stream set + node); deploying a plan
  /// whose derived units have no producer throws. Must be called before
  /// run().
  void deploy(const query::Deployment& d, const query::RateModel& rates);

  /// Registers a fault to inject mid-run. Must be called before run().
  void schedule_fault(const SimFault& f);

  /// Executes the event loop for the configured duration. Call once.
  void run();

  /// Sum over links of transferred bytes × link cost, per second.
  double measured_cost_per_second() const;

  /// Bytes carried by a specific link (diagnostics).
  double link_bytes(std::size_t link_index) const;

  std::uint64_t tuples_delivered(query::QueryId q) const;

  /// Delivered result tuples per second for a query.
  double delivered_rate(query::QueryId q) const;

  std::uint64_t tuples_emitted() const { return tuples_emitted_; }

  /// Runtime counters for every operator instance.
  std::vector<OperatorStats> operator_stats() const;

  /// Mean end-to-end result latency (freshest-input emission to sink
  /// arrival) in milliseconds; 0 when nothing was delivered.
  double mean_latency_ms(query::QueryId q) const;

  /// Delivered rate over the analytic no-fault output rate of the query
  /// (1.0 ± sampling noise when nothing failed; degrades under faults).
  double availability(query::QueryId q) const;

  /// Total time the query's deployment was broken — some element on a dead
  /// node or some data edge unroutable — during the run.
  double downtime_s(query::QueryId q) const;

  /// Tuples dropped at dead nodes or on severed links.
  std::uint64_t tuples_dropped() const { return tuples_dropped_; }

  /// Delivery-semantics accounting for a query (reliable mode; zeros
  /// otherwise). Shed counts and queue depths of operators shared between
  /// queries are attributed to the query that deployed them first.
  DeliveryStats delivery_stats(query::QueryId q) const;

  /// Per-channel reliability telemetry, one entry per data edge in channel
  /// creation order (reliable mode; empty otherwise). Feed to
  /// HealthMonitor::observe.
  std::vector<ChannelTelemetry> channel_telemetry() const;

  /// Checkpoint-plane accounting (zeros when cfg.checkpoint disabled).
  SnapshotStats snapshot_stats() const;

 private:
  using InstanceId = std::uint32_t;

  static constexpr std::uint32_t kNoChannel =
      std::numeric_limits<std::uint32_t>::max();

  struct Consumer {
    InstanceId instance;
    int port;  // 0/1 for joins; ignored for sinks
    /// Query whose deployment created this data edge (stats attribution).
    query::QueryId query = 0;
    /// Reliable-mode channel index, kNoChannel in the legacy data plane.
    std::uint32_t channel = kNoChannel;
  };

  /// Reliable-mode state of one producer->consumer data edge: sender-side
  /// sequence numbers, the un-acked in-flight set (which doubles as the
  /// ack-trimmed replay buffer), the sliding-window backlog, and the
  /// receiver-side dedup set.
  struct PendingTuple {
    TuplePtr tuple;
    int retries = 0;
    /// Departure time of the latest transmission and the clean-network RTT
    /// it should see (data path + ack return, no degradation/jitter) — the
    /// pair behind each ChannelTelemetry RTT sample.
    double sent_at = 0.0;
    double expected_rtt_s = 0.0;
  };
  struct Channel {
    InstanceId producer = 0;
    InstanceId consumer = 0;
    int port = 0;
    query::QueryId query = 0;
    std::uint64_t next_seq = 0;
    std::unordered_map<std::uint64_t, PendingTuple> pending;
    std::deque<TuplePtr> backlog;  // waiting for window space
    // Receiver dedup: every seq < seen_floor was delivered, plus the
    // out-of-order set above the floor (compacted on every floor advance;
    // seen_high_water tracks the worst burst).
    std::uint64_t seen_floor = 0;
    std::unordered_set<std::uint64_t> seen;
    std::size_t seen_high_water = 0;
    // Checkpoint plane: this epoch's barrier cut (kNoCut until the sender
    // snapshots), the alignment buffer holding post-cut arrivals until the
    // receiver snapshots, and the retention buffer of everything sent at
    // or past the last committed cut. A rollback bumps the incarnation so
    // stale in-flight data/ack/timeout events die instead of colliding
    // with the restarted sequence space.
    static constexpr std::uint64_t kNoCut =
        std::numeric_limits<std::uint64_t>::max();
    std::uint64_t cut = kNoCut;
    std::map<std::uint64_t, TuplePtr> align;
    std::map<std::uint64_t, TuplePtr> retained;
    std::size_t retained_high_water = 0;
    std::uint32_t incarnation = 0;
    // Counters.
    std::uint64_t sent = 0;  // transmissions, first and re alike
    std::uint64_t retransmits = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t lost = 0;
    double data_bytes = 0.0;
    double retransmit_bytes = 0.0;
    // Ack RTT telemetry (see ChannelTelemetry).
    std::uint64_t rtt_samples = 0;
    double rtt_sum_ms = 0.0;
    double expected_rtt_sum_ms = 0.0;
  };

  enum class Kind : std::uint8_t {
    kSource,
    kJoin,
    kFilter,
    kAggregate,
    kSink,
  };

  struct Instance {
    Kind kind;
    net::NodeId node = net::kInvalidNode;
    std::vector<query::StreamId> streams;  // output stream set, sorted
    std::vector<Consumer> consumers;
    // Join state.
    std::deque<std::pair<double, TuplePtr>> window[2];
    // Source state.
    query::StreamId source_stream = query::kInvalidStream;
    // Filter state: selection operators pass tuples with this probability
    // (query filter predicates are on non-join attributes, so passing is
    // independent of the synthetic join keys).
    double pass_probability = 1.0;
    // Aggregate state: tumbling window; groups are derived by hashing the
    // tuple's join keys. One output tuple per non-empty group per window;
    // the final partial window is not flushed (no terminating watermark).
    query::Aggregation aggregation;
    std::int64_t window_index = -1;
    std::set<std::uint64_t> groups_seen;
    // Sink state.
    query::QueryId query = 0;
    std::uint64_t delivered = 0;
    double latency_sum_s = 0.0;
    // Counters (all kinds).
    std::uint64_t tuples_in = 0;
    std::uint64_t tuples_sent = 0;
    double bytes_sent = 0.0;
    // Reliable-mode state.
    query::QueryId owner = 0;  // query whose deploy created this instance
    std::deque<std::pair<int, TuplePtr>> inbox;  // bounded input queue
    bool busy = false;          // a service completion event is scheduled
    std::size_t max_queue_depth = 0;
    std::uint64_t shed = 0;     // dropped by the overflow policy
    // Event-time watermark input: max born seen across all inputs.
    double max_born = -std::numeric_limits<double>::infinity();
    // Event-time aggregate windows (reliable mode): window index -> groups.
    std::map<std::int64_t, std::set<std::uint64_t>> agg_windows;
    // Checkpoint plane: snapshotted in the epoch currently in flight.
    bool snapped = false;
  };

  /// Serialized operator state of one instance at a barrier cut.
  struct InstState {
    std::deque<std::pair<double, TuplePtr>> window[2];
    double max_born = -std::numeric_limits<double>::infinity();
    std::int64_t window_index = -1;
    std::set<std::uint64_t> groups_seen;
    std::map<std::int64_t, std::set<std::uint64_t>> agg_windows;
    std::deque<std::pair<int, TuplePtr>> inbox;
    std::uint64_t delivered = 0;
    double latency_sum_s = 0.0;
  };

  /// One epoch of the replicated in-memory snapshot store: per-instance
  /// operator state plus the per-channel cut (receiver floor == sender
  /// next_seq == cut at the snapshot instant, see CheckpointConfig).
  struct EpochSnapshot {
    std::int64_t epoch = -1;  // -1 = nothing committed yet
    double barrier_time = 0.0;
    std::vector<InstState> inst;
    std::vector<std::uint64_t> cuts;
    double bytes = 0.0;  // replica-multiplied serialized size
  };

  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break
    InstanceId instance;  // fault index when port == kFaultPort
    int port;        // -1 for source self-emission, -2 for a fault
    TuplePtr tuple;  // null for source self-emission
    /// Link indices the tuple traversed (charged at send time); the arrival
    /// is dropped if any of them died while the tuple was in flight.
    std::vector<std::uint32_t> links;
    /// Reliable-mode routing: which channel the event belongs to (data,
    /// ack, timeout) and the channel sequence number it refers to.
    std::uint32_t channel = kNoChannel;
    std::uint64_t tseq = 0;
    /// Channel incarnation the event was stamped with; a rollback bumps
    /// the channel's incarnation, invalidating everything in flight.
    std::uint32_t inc = 0;
    bool operator>(const Event& o) const {
      return std::tie(time, seq) > std::tie(o.time, o.seq);
    }
  };

  static constexpr int kFaultPort = -2;
  static constexpr int kAckPort = -3;      // ack arriving back at the sender
  static constexpr int kTimeoutPort = -4;  // retransmit timer firing
  static constexpr int kServicePort = -5;  // queued operator finishes a tuple
  static constexpr int kBarrierPort = -6;  // checkpoint barrier injection

  /// Per-deployment health watch for availability/downtime accounting.
  struct QueryWatch {
    query::QueryId query = 0;
    double expected_rate = 0.0;  // analytic no-fault result tuples/s
    std::vector<net::NodeId> nodes;
    std::vector<std::pair<net::NodeId, net::NodeId>> edges;
    bool broken = false;
    double broken_since = 0.0;
    double downtime_s = 0.0;
  };

  InstanceId source_for(query::StreamId s);
  InstanceId find_producer(const std::vector<query::StreamId>& streams,
                           net::NodeId node) const;
  void register_producer(const std::vector<query::StreamId>& streams,
                         net::NodeId node, InstanceId id);
  /// Ships a tuple to a consumer: charges bytes to every link on the
  /// cost-optimal route and schedules the arrival event.
  static constexpr InstanceId kNoProducer =
      std::numeric_limits<InstanceId>::max();
  void send(double now, net::NodeId from, const TuplePtr& tuple,
            const Consumer& to, InstanceId producer);
  void schedule(Event e);
  void emit_from_source(double now, InstanceId id);
  void arrive_at(double now, InstanceId id, int port, const TuplePtr& tuple);
  void apply_fault(double now, const SimFault& f);
  // Reliable data plane (cfg_.reliability.enabled).
  void channel_send(double now, std::uint32_t ch, const TuplePtr& tuple);
  void transmit(double now, std::uint32_t ch, std::uint64_t seq,
                bool is_retransmit);
  void send_ack(double now, std::uint32_t ch, std::uint64_t seq);
  void handle_ack(double now, std::uint32_t ch, std::uint64_t seq);
  void handle_timeout(double now, std::uint32_t ch, std::uint64_t seq);
  void handle_service(double now, InstanceId id);
  void receive(double now, std::uint32_t ch, std::uint64_t seq, int port,
               const TuplePtr& tuple);
  void pump_backlog(double now, std::uint32_t ch);
  /// Records `s` in the receiver dedup state, compacting the out-of-order
  /// set against the floor on every advance.
  void mark_seen(Channel& c, std::uint64_t s);
  // Checkpoint plane (cfg_.checkpoint.enabled).
  void begin_epoch(double now);
  void snap_instance(double now, InstanceId id);
  void maybe_snap(double now, InstanceId id);
  void commit_epoch(double now);
  void abort_epoch(double now);
  void schedule_barrier(double after);
  void wipe_operator_state(Instance& inst);
  double instance_state_bytes(const InstState& s) const;
  void recover_node(double now, net::NodeId n);
  void migrate_ops(double now, net::NodeId from, net::NodeId to);
  /// Combined gray-failure state of one hop at time `now`: extra drop
  /// probability (link degradation and both endpoint nodes, multiplicative)
  /// and delay multiplier (max of the three), flap waves evaluated at
  /// `now`. Identity when nothing on the hop is degraded.
  void hop_degradation(const net::Link& link, double now, double* extra_loss,
                       double* slowdown) const;
  /// Deterministic content-hash replacement for prng_.chance in reliable
  /// mode: the pass/fail decision depends only on the tuple and the filter
  /// instance, so it is identical across lossy and loss-free runs.
  bool hash_pass(const Tuple& t, InstanceId id, double p) const;
  void update_watches(double now);
  const net::Network& cur_net() const { return fnet_ ? *fnet_ : *net_; }
  const net::RoutingTables& cur_rt() const { return frt_ ? *frt_ : *rt_; }
  /// Instantaneous emission rate of stream s: catalog rate times the
  /// configured rate_factor (floored so the source clock never stalls).
  double source_rate(query::StreamId s, double now) const;
  TuplePtr make_source_tuple(query::StreamId s, double now);
  TuplePtr join_tuples(const Tuple& a, const Tuple& b) const;
  bool matches(const Tuple& a, const Tuple& b) const;
  std::uint32_t key_domain(query::StreamId a, query::StreamId b) const;
  double composite_width(const std::vector<query::StreamId>& streams) const;

  const net::Network* net_;
  const net::RoutingTables* rt_;
  const query::Catalog* catalog_;
  EngineConfig cfg_;
  Prng prng_;
  /// Dedicated stream for link loss and jitter draws so the main stream —
  /// source schedules and key draws — is identical between a lossy run and
  /// its loss-free baseline.
  Prng net_prng_;
  std::vector<Channel> channels_;

  std::vector<Instance> instances_;
  std::unordered_map<query::StreamId, InstanceId> sources_;
  // (sorted stream set, node) -> producer instance.
  std::unordered_map<std::string, InstanceId> producers_;
  std::unordered_map<std::uint64_t, std::size_t> link_index_;  // (a,b) key
  std::vector<double> link_bytes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t tuples_emitted_ = 0;
  bool ran_ = false;
  // Fault state: a private mutable copy of the network (created lazily by
  // the first schedule_fault) plus routing rebuilt at each fault time.
  std::vector<SimFault> faults_;
  std::unique_ptr<net::Network> fnet_;
  std::unique_ptr<net::RoutingTables> frt_;
  std::vector<QueryWatch> watches_;
  std::uint64_t tuples_dropped_ = 0;
  // Checkpoint plane: the last committed epoch (the rollback target), the
  // epoch being built (one in flight at a time), and the running stats.
  EpochSnapshot committed_;
  EpochSnapshot building_;
  bool epoch_open_ = false;
  std::int64_t next_epoch_ = 1;
  std::size_t unsnapped_ = 0;
  SnapshotStats snap_stats_;
  std::unordered_map<query::QueryId, double> snapshot_bytes_by_query_;
};

}  // namespace iflow::engine
