// Discrete-event stream-processing engine — the execution substrate standing
// in for the IFLOW prototype (see DESIGN.md, substitutions).
//
// A Simulation instantiates Deployments as operator graphs on the simulated
// network and executes them: sources emit tuples at their catalog rates,
// windowed symmetric-hash joins match tuples by synthetic join keys whose
// collision probability equals the catalog selectivity, and every tuple
// transfer is routed along the cost-optimal path, charging bytes to each
// physical link it crosses. The measured per-unit-time cost
// (sum over links of bytes x link cost / duration) is directly comparable
// to the optimizer's analytic deployment cost; integration tests assert
// they agree.
//
// Join semantics: both inputs keep a sliding window of `window_s` seconds; a
// new tuple probes the opposite window and emits one output per matching
// pair, so a pair matches iff it arrives within `window_s` of each other.
// With window_s = 0.5 the expected output rate of A ⋈ B is
// rate_A x rate_B x selectivity — exactly the analytic RateModel.
//
// Operator sharing: a Deployment leaf unit marked `derived` binds to the
// operator of an earlier deployment producing the same stream set at the
// same node, so reused operators stream their output once per consumer and
// incur no upstream traffic — the engine-level realisation of the paper's
// stream advertisements. Containment reuse (LeafUnit::residual_filter < 1)
// interposes a selection at the provider. Limitation: producers are keyed
// by (stream set, node); two co-located operators over the same streams
// with different filters are not distinguished — the first deployment wins.
#pragma once

#include <deque>
#include <limits>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/prng.h"
#include "net/routing.h"
#include "query/plan.h"
#include "query/rates.h"

namespace iflow::engine {

/// A mid-execution network fault, applied at `time` while the event loop
/// runs. Faults mutate a private copy of the network: in-flight tuples
/// whose remaining route crosses a dead link (or whose destination died)
/// are dropped, and sources on dead nodes pause until restored.
struct SimFault {
  enum class Kind : std::uint8_t {
    kFailLink,
    kRestoreLink,
    kCrashNode,
    kRestoreNode,
  };
  double time = 0.0;
  Kind kind = Kind::kCrashNode;
  net::NodeId a = net::kInvalidNode;  // the node, or the link's first end
  net::NodeId b = net::kInvalidNode;  // the link's second end (links only)
};

struct EngineConfig {
  double duration_s = 30.0;
  /// Sliding window of the symmetric hash joins. 0.5 s makes measured join
  /// rates match the analytic model (see file comment).
  double window_s = 0.5;
  /// Poisson arrivals when true; evenly spaced (with a random phase)
  /// otherwise — useful for low-variance model-validation runs.
  bool poisson = true;
  /// Must match the RateModel projection used when planning.
  double projection_factor = 1.0;
};

/// A tuple flowing through the system: the base streams it joins and, per
/// constituent, one synthetic join key per catalog stream.
struct Tuple {
  std::vector<query::StreamId> constituents;  // sorted
  std::vector<std::uint32_t> keys;  // constituents.size() × stream_count
  double width = 0.0;               // bytes
  /// Simulation time the freshest constituent was emitted; sink arrival
  /// minus this is the result's end-to-end latency.
  double born = 0.0;
};

/// Per-operator runtime counters (observability / load analysis).
struct OperatorStats {
  std::string kind;  // source | join | filter | aggregate | sink
  net::NodeId node = net::kInvalidNode;
  std::vector<query::StreamId> streams;
  std::uint64_t tuples_in = 0;
  std::uint64_t tuples_sent = 0;  // copies shipped to consumers
  double bytes_sent = 0.0;
};
using TuplePtr = std::shared_ptr<const Tuple>;

class Simulation {
 public:
  Simulation(const net::Network& net, const net::RoutingTables& rt,
             const query::Catalog& catalog, const EngineConfig& cfg,
             std::uint64_t seed);

  /// Instantiates a deployment. Derived leaf units bind to operators of
  /// earlier deployments (matched by stream set + node); deploying a plan
  /// whose derived units have no producer throws. Must be called before
  /// run().
  void deploy(const query::Deployment& d, const query::RateModel& rates);

  /// Registers a fault to inject mid-run. Must be called before run().
  void schedule_fault(const SimFault& f);

  /// Executes the event loop for the configured duration. Call once.
  void run();

  /// Sum over links of transferred bytes × link cost, per second.
  double measured_cost_per_second() const;

  /// Bytes carried by a specific link (diagnostics).
  double link_bytes(std::size_t link_index) const;

  std::uint64_t tuples_delivered(query::QueryId q) const;

  /// Delivered result tuples per second for a query.
  double delivered_rate(query::QueryId q) const;

  std::uint64_t tuples_emitted() const { return tuples_emitted_; }

  /// Runtime counters for every operator instance.
  std::vector<OperatorStats> operator_stats() const;

  /// Mean end-to-end result latency (freshest-input emission to sink
  /// arrival) in milliseconds; 0 when nothing was delivered.
  double mean_latency_ms(query::QueryId q) const;

  /// Delivered rate over the analytic no-fault output rate of the query
  /// (1.0 ± sampling noise when nothing failed; degrades under faults).
  double availability(query::QueryId q) const;

  /// Total time the query's deployment was broken — some element on a dead
  /// node or some data edge unroutable — during the run.
  double downtime_s(query::QueryId q) const;

  /// Tuples dropped at dead nodes or on severed links.
  std::uint64_t tuples_dropped() const { return tuples_dropped_; }

 private:
  using InstanceId = std::uint32_t;

  struct Consumer {
    InstanceId instance;
    int port;  // 0/1 for joins; ignored for sinks
  };

  enum class Kind : std::uint8_t {
    kSource,
    kJoin,
    kFilter,
    kAggregate,
    kSink,
  };

  struct Instance {
    Kind kind;
    net::NodeId node = net::kInvalidNode;
    std::vector<query::StreamId> streams;  // output stream set, sorted
    std::vector<Consumer> consumers;
    // Join state.
    std::deque<std::pair<double, TuplePtr>> window[2];
    // Source state.
    query::StreamId source_stream = query::kInvalidStream;
    // Filter state: selection operators pass tuples with this probability
    // (query filter predicates are on non-join attributes, so passing is
    // independent of the synthetic join keys).
    double pass_probability = 1.0;
    // Aggregate state: tumbling window; groups are derived by hashing the
    // tuple's join keys. One output tuple per non-empty group per window;
    // the final partial window is not flushed (no terminating watermark).
    query::Aggregation aggregation;
    std::int64_t window_index = -1;
    std::set<std::uint64_t> groups_seen;
    // Sink state.
    query::QueryId query = 0;
    std::uint64_t delivered = 0;
    double latency_sum_s = 0.0;
    // Counters (all kinds).
    std::uint64_t tuples_in = 0;
    std::uint64_t tuples_sent = 0;
    double bytes_sent = 0.0;
  };

  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break
    InstanceId instance;  // fault index when port == kFaultPort
    int port;        // -1 for source self-emission, -2 for a fault
    TuplePtr tuple;  // null for source self-emission
    /// Link indices the tuple traversed (charged at send time); the arrival
    /// is dropped if any of them died while the tuple was in flight.
    std::vector<std::uint32_t> links;
    bool operator>(const Event& o) const {
      return std::tie(time, seq) > std::tie(o.time, o.seq);
    }
  };

  static constexpr int kFaultPort = -2;

  /// Per-deployment health watch for availability/downtime accounting.
  struct QueryWatch {
    query::QueryId query = 0;
    double expected_rate = 0.0;  // analytic no-fault result tuples/s
    std::vector<net::NodeId> nodes;
    std::vector<std::pair<net::NodeId, net::NodeId>> edges;
    bool broken = false;
    double broken_since = 0.0;
    double downtime_s = 0.0;
  };

  InstanceId source_for(query::StreamId s);
  InstanceId find_producer(const std::vector<query::StreamId>& streams,
                           net::NodeId node) const;
  void register_producer(const std::vector<query::StreamId>& streams,
                         net::NodeId node, InstanceId id);
  /// Ships a tuple to a consumer: charges bytes to every link on the
  /// cost-optimal route and schedules the arrival event.
  static constexpr InstanceId kNoProducer =
      std::numeric_limits<InstanceId>::max();
  void send(double now, net::NodeId from, const TuplePtr& tuple,
            const Consumer& to, InstanceId producer);
  void schedule(Event e);
  void emit_from_source(double now, InstanceId id);
  void arrive_at(double now, InstanceId id, int port, const TuplePtr& tuple);
  void apply_fault(double now, const SimFault& f);
  void update_watches(double now);
  const net::Network& cur_net() const { return fnet_ ? *fnet_ : *net_; }
  const net::RoutingTables& cur_rt() const { return frt_ ? *frt_ : *rt_; }
  TuplePtr make_source_tuple(query::StreamId s, double now);
  TuplePtr join_tuples(const Tuple& a, const Tuple& b) const;
  bool matches(const Tuple& a, const Tuple& b) const;
  std::uint32_t key_domain(query::StreamId a, query::StreamId b) const;
  double composite_width(const std::vector<query::StreamId>& streams) const;

  const net::Network* net_;
  const net::RoutingTables* rt_;
  const query::Catalog* catalog_;
  EngineConfig cfg_;
  Prng prng_;

  std::vector<Instance> instances_;
  std::unordered_map<query::StreamId, InstanceId> sources_;
  // (sorted stream set, node) -> producer instance.
  std::unordered_map<std::string, InstanceId> producers_;
  std::unordered_map<std::uint64_t, std::size_t> link_index_;  // (a,b) key
  std::vector<double> link_bytes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t tuples_emitted_ = 0;
  bool ran_ = false;
  // Fault state: a private mutable copy of the network (created lazily by
  // the first schedule_fault) plus routing rebuilt at each fault time.
  std::vector<SimFault> faults_;
  std::unique_ptr<net::Network> fnet_;
  std::unique_ptr<net::RoutingTables> frt_;
  std::vector<QueryWatch> watches_;
  std::uint64_t tuples_dropped_ = 0;
};

}  // namespace iflow::engine
