#include "engine/middleware.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <tuple>

#include "opt/in_network.h"
#include "opt/plan_then_deploy.h"
#include "opt/relaxation.h"
#include "query/rates.h"

namespace iflow::engine {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Global stream set of a mask under a query's rate model, sorted — the
// identity the engine keys producers by.
std::vector<query::StreamId> global_streams(const query::RateModel& rates,
                                            query::Mask m) {
  std::vector<query::StreamId> out;
  for (int i = 0; i < rates.k(); ++i) {
    if (m >> i & 1) out.push_back(rates.stream(i));
  }
  std::sort(out.begin(), out.end());
  return out;
}
}

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kTopDown: return "top-down";
    case Algorithm::kBottomUp: return "bottom-up";
    case Algorithm::kExhaustive: return "exhaustive";
    case Algorithm::kPlanThenDeploy: return "plan-then-deploy";
    case Algorithm::kRelaxation: return "relaxation";
    case Algorithm::kInNetwork: return "in-network";
  }
  return "?";
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kMigrated: return "migrated";
    case Outcome::kAccepted: return "accepted";
    case Outcome::kSuspended: return "suspended";
    case Outcome::kResumed: return "resumed";
    case Outcome::kRejected: return "rejected";
  }
  return "?";
}

Middleware::Middleware(net::Network& net, query::Catalog& catalog,
                       int max_cs, Algorithm algorithm, std::uint64_t seed,
                       double drift_threshold)
    : net_(&net), catalog_(&catalog), max_cs_(max_cs), algorithm_(algorithm),
      seed_(seed), drift_threshold_(drift_threshold),
      backoff_prng_(Prng(seed).fork(0xBACC0FFULL)) {
  IFLOW_CHECK(drift_threshold > 1.0);
  rebuild_views();
  ledger_.reset(net_->node_count(), net_->link_count());
}

void Middleware::rebuild_routing() {
  // In-place incremental repair: the RoutingTables object is stable for the
  // middleware's lifetime, so hierarchies and oracles never hold a dangling
  // snapshot; sync() replays the network's mutation log (quality-only
  // batches are free, fault batches invalidate only what they touched).
  if (routing_ == nullptr) {
    routing_ = std::make_unique<net::RoutingTables>(
        net::RoutingTables::build(*net_));
    return;
  }
  routing_->sync(*net_);
}

void Middleware::rebuild_views() {
  rebuild_routing();
  // The clustering is a pure function of (middleware seed, network
  // version): a fresh Prng per rebuild, not a draw from an advancing
  // stream, so two middlewares with the same seed looking at the same
  // network state produce the same hierarchy regardless of how many
  // rebuilds each one has been through. reoptimize()'s joint pass relies
  // on this to reproduce what a from-scratch deployment would plan.
  Prng fork = Prng(seed_).fork(net_->version());
  hierarchy_ = std::make_unique<cluster::Hierarchy>(
      cluster::Hierarchy::build(*net_, *routing_, max_cs_, fork));
  // A rebuild re-admits every node; prune the ones that are currently down
  // so the hierarchy keeps reflecting the live membership.
  for (net::NodeId n = 0; n < net_->node_count(); ++n) {
    if (host_down(n) && hierarchy_->contains(n)) {
      hierarchy_->remove_node(n, *routing_);
    }
  }
}

bool Middleware::host_down(net::NodeId n) const {
  return !net_->node_alive(n) ||
         std::find(failed_nodes_.begin(), failed_nodes_.end(), n) !=
             failed_nodes_.end();
}

bool Middleware::deployment_on_excluded(const query::Deployment& d) const {
  const auto excluded = [this](net::NodeId n) {
    return host_down(n) ||
           std::find(overloaded_nodes_.begin(), overloaded_nodes_.end(), n) !=
               overloaded_nodes_.end() ||
           std::find(quarantined_nodes_.begin(), quarantined_nodes_.end(),
                     n) != quarantined_nodes_.end();
  };
  for (const query::DeployedOp& op : d.ops) {
    if (excluded(op.node)) return true;
  }
  for (const query::LeafUnit& u : d.units) {
    if (u.derived && excluded(u.location)) return true;
  }
  return false;
}

bool Middleware::endpoints_healthy(const query::Query& q) const {
  if (host_down(q.sink)) return false;
  for (query::StreamId s : q.sources) {
    if (host_down(catalog_->stream(s).source)) return false;
  }
  return true;
}

bool Middleware::deployment_intact(const Active& a) const {
  const query::Deployment& d = a.deployment;
  for (const query::LeafUnit& u : d.units) {
    if (host_down(u.location)) return false;
  }
  for (const query::DeployedOp& op : d.ops) {
    if (host_down(op.node)) return false;
  }
  if (host_down(d.sink)) return false;
  // Every data edge must still be routable (a partition can sever edges
  // between perfectly healthy hosts).
  const auto loc_of = [&d](int child) {
    return query::child_is_unit(child)
               ? d.units[static_cast<std::size_t>(
                             query::child_unit_index(child))]
                     .location
               : d.ops[static_cast<std::size_t>(child)].node;
  };
  for (const query::DeployedOp& op : d.ops) {
    for (int child : {op.left, op.right}) {
      const net::NodeId from = loc_of(child);
      if (from != op.node && !routing_->reachable(from, op.node)) return false;
    }
  }
  const net::NodeId root = d.root_node();
  if (root != d.sink && !routing_->reachable(root, d.sink)) return false;
  return derived_units_bound(a);
}

bool Middleware::exports_at(const Active& b, net::NodeId loc,
                            const std::vector<query::StreamId>& want) const {
  query::RateModel rb(*catalog_, b.q);
  for (const query::DeployedOp& op : b.deployment.ops) {
    if (op.node == loc && global_streams(rb, op.mask) == want) return true;
  }
  // A non-aggregated sink re-exports the full result stream set.
  if (!b.deployment.aggregate.enabled() && b.deployment.sink == loc) {
    query::Mask full = 0;
    for (const query::LeafUnit& bu : b.deployment.units) full |= bu.mask;
    if (global_streams(rb, full) == want) return true;
  }
  return false;
}

bool Middleware::derived_units_bound(const Active& a) const {
  bool any_derived = false;
  for (const query::LeafUnit& u : a.deployment.units) any_derived |= u.derived;
  if (!any_derived) return true;
  query::RateModel own(*catalog_, a.q);
  for (const query::LeafUnit& u : a.deployment.units) {
    if (!u.derived) continue;
    const auto want = global_streams(own, u.mask);
    bool found = false;
    for (const Active& b : active_) {
      if (b.q.id == a.q.id) continue;
      if (exports_at(b, u.location, want)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::vector<bool> Middleware::transitive_dependents(const Active& root) const {
  std::vector<bool> dep(active_.size(), false);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    dep[i] = active_[i].q.id == root.q.id;
  }
  // Fixpoint: an active depends on root when any of its derived units could
  // bind to an export of an already-dependent active. Conservative — a unit
  // with several matching providers counts as depending on all of them.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (dep[i]) continue;
      const Active& b = active_[i];
      query::RateModel rb(*catalog_, b.q);
      bool draws = false;
      for (const query::LeafUnit& u : b.deployment.units) {
        if (!u.derived) continue;
        const auto want = global_streams(rb, u.mask);
        for (std::size_t j = 0; j < active_.size(); ++j) {
          if (dep[j] && exports_at(active_[j], u.location, want)) {
            draws = true;
            break;
          }
        }
        if (draws) break;
      }
      if (draws) {
        dep[i] = true;
        changed = true;
      }
    }
  }
  return dep;
}

opt::OptimizerEnv Middleware::env() {
  opt::OptimizerEnv e;
  e.catalog = catalog_;
  e.network = net_;
  e.routing = routing_.get();
  e.hierarchy = hierarchy_.get();
  e.registry = &registry_;
  e.reuse = true;
  bool any_excluded = !failed_nodes_.empty() || !overloaded_nodes_.empty() ||
                      !quarantined_nodes_.empty();
  for (net::NodeId n = 0; n < net_->node_count() && !any_excluded; ++n) {
    any_excluded = !net_->node_alive(n);
  }
  if (any_excluded) {
    const auto excluded = [this](net::NodeId n) {
      return host_down(n) ||
             std::find(overloaded_nodes_.begin(), overloaded_nodes_.end(),
                       n) != overloaded_nodes_.end() ||
             std::find(quarantined_nodes_.begin(), quarantined_nodes_.end(),
                       n) != quarantined_nodes_.end();
    };
    for (net::NodeId n = 0; n < net_->node_count(); ++n) {
      if (!excluded(n)) e.processing_nodes.push_back(n);
    }
  }
  e.excluded_sites = admission_excluded_;  // sorted by the degraded path
  if (!health_penalty_.empty()) e.node_penalty = &health_penalty_;
  e.workspace = &workspace_;
  return e;
}

void Middleware::ledger_add(Active& a) {
  query::RateModel rates(*catalog_, a.q);
  a.footprint = footprint(a.deployment, rates, *routing_, *net_);
  ledger_.apply(a.footprint, a.q.tenant, +1);
}

void Middleware::ledger_remove(Active& a) {
  ledger_.apply(a.footprint, a.q.tenant, -1);
  a.footprint = DeploymentFootprint{};
}

void Middleware::record_migration(query::QueryId q,
                                  const query::Deployment& before,
                                  const query::Deployment& after, bool warm) {
  StateMigration m;
  m.query = q;
  m.warm = warm;
  // Per-op moves only where the join shape survived: an op keeps its state
  // identity when the same mask sits at the same arena index. A replan that
  // restructured the tree contributes no moves (no state-compatible
  // predecessor exists) but is still recorded so harnesses see the event.
  const std::size_t n = std::min(before.ops.size(), after.ops.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (before.ops[i].mask != after.ops[i].mask) continue;
    if (before.ops[i].node == after.ops[i].node) continue;
    StateMigration::OpMove mv;
    mv.op = static_cast<int>(i);
    mv.from = before.ops[i].node;
    mv.to = after.ops[i].node;
    m.moves.push_back(mv);
  }
  state_migrations_.push_back(std::move(m));
}

void Middleware::on_migrated(Active& a, const query::Deployment& before) {
  registry_.remove_origin(a.q.id);
  query::RateModel rates(*catalog_, a.q);
  advert::advertise_deployment(registry_, a.deployment, rates);
  ledger_add(a);
  record_migration(a.q.id, before, a.deployment, /*warm=*/true);
}

void Middleware::mark_dirty(query::QueryId id) {
  const auto it = std::lower_bound(dirty_.begin(), dirty_.end(), id);
  if (it == dirty_.end() || *it != id) dirty_.insert(it, id);
}

void Middleware::mark_dirty_overlap(const query::Query& q) {
  // A changed provider can only alter another query's options through the
  // operator outputs it actually advertises, and a consumer can only adopt
  // a unit whose stream set is a subset of its own sources. Testing the
  // registry's real entries (rather than raw source overlap) keeps the
  // dirty region tight, which is what holds settle's replanned fraction
  // far under reoptimize()'s. Call this only after the provider's
  // advertisements are current.
  std::vector<const advert::DerivedStream*> units;
  for (const advert::DerivedStream& d : registry_.entries()) {
    if (d.origin == q.id && d.streams.size() >= 2) units.push_back(&d);
  }
  if (units.empty()) return;
  for (const Active& a : active_) {
    if (a.q.id == q.id) continue;
    std::vector<query::StreamId> sorted = a.q.sources;
    std::sort(sorted.begin(), sorted.end());
    bool adoptable = false;
    for (const advert::DerivedStream* d : units) {
      bool subset = true;
      for (query::StreamId s : d->streams) {
        if (!std::binary_search(sorted.begin(), sorted.end(), s)) {
          subset = false;
          break;
        }
      }
      if (subset) {
        adoptable = true;
        break;
      }
    }
    if (adoptable) mark_dirty(a.q.id);
  }
}

void Middleware::debug_check_warm_state() const {
#ifndef NDEBUG
  // Warm registry == full rebuild: same (origin, location, streams)
  // multiset. Rates may lag on entries whose origin was untouched by an
  // event (harmless — they refresh on the next migration), so only the
  // identity triple is compared.
  advert::Registry rebuilt;
  for (const Active& a : active_) {
    query::RateModel rates(*catalog_, a.q);
    advert::advertise_deployment(rebuilt, a.deployment, rates);
  }
  const auto key_of = [](const advert::DerivedStream& ds) {
    return std::make_tuple(ds.origin, ds.location, ds.streams);
  };
  std::vector<std::tuple<query::QueryId, net::NodeId,
                         std::vector<query::StreamId>>>
      warm, fresh;
  for (const advert::DerivedStream& ds : registry_.entries()) {
    warm.push_back(key_of(ds));
  }
  for (const advert::DerivedStream& ds : rebuilt.entries()) {
    fresh.push_back(key_of(ds));
  }
  std::sort(warm.begin(), warm.end());
  std::sort(fresh.begin(), fresh.end());
  IFLOW_CHECK_MSG(warm == fresh,
                  "warm registry diverged from rebuild: " << warm.size()
                  << " vs " << fresh.size() << " entries");
  // Incremental node loads == from-scratch recompute.
  const std::vector<double>& inc = ledger_.node_load();
  const std::vector<double> scratch = node_loads_recomputed();
  IFLOW_CHECK(inc.size() == scratch.size());
  for (std::size_t n = 0; n < inc.size(); ++n) {
    const double tol = 1e-6 * (1.0 + std::abs(scratch[n]));
    IFLOW_CHECK_MSG(std::abs(inc[n] - scratch[n]) <= tol,
                    "incremental load drifted on node " << n << ": "
                    << inc[n] << " vs " << scratch[n]);
  }
#endif
}

opt::OptimizeResult Middleware::replan(const Active& a) {
  // Plan against a registry of everyone else's operators: this query's own
  // stale advertisements must not be reused, and neither may those of
  // queries that (transitively) derive from this query's results. Reusing a
  // dependent's re-export would plan a cycle in which each side claims the
  // other produces the data and nothing is grounded in a real source.
  const std::vector<bool> dep = transitive_dependents(a);
  advert::Registry fresh;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (dep[i]) continue;
    const Active& other = active_[i];
    query::RateModel rates(*catalog_, other.q);
    advert::advertise_deployment(fresh, other.deployment, rates);
  }
  // Advertisements stranded on down hosts are not reusable.
  fresh.remove_located([this](net::NodeId n) { return host_down(n); });
  advert::Registry saved = std::move(registry_);
  registry_ = std::move(fresh);
  auto optimizer = make_optimizer();
  opt::OptimizeResult res = optimizer->optimize(a.q);
  registry_ = std::move(saved);
  return res;
}

std::unique_ptr<opt::Optimizer> Middleware::make_optimizer() {
  switch (algorithm_) {
    case Algorithm::kTopDown:
      return std::make_unique<opt::TopDownOptimizer>(env());
    case Algorithm::kBottomUp:
      return std::make_unique<opt::BottomUpOptimizer>(env());
    case Algorithm::kExhaustive:
      return std::make_unique<opt::ExhaustiveOptimizer>(env());
    case Algorithm::kPlanThenDeploy:
      return std::make_unique<opt::PlanThenDeployOptimizer>(env());
    case Algorithm::kRelaxation:
      // Paper §3.3 settings: 4 relaxation and 4 embedding iterations. The
      // seed is the middleware's, so replans stay deterministic per seed.
      return std::make_unique<opt::RelaxationOptimizer>(
          env(), seed_, /*relax_iterations=*/4, /*embed_iterations=*/4);
    case Algorithm::kInNetwork:
      return std::make_unique<opt::InNetworkOptimizer>(env(), seed_,
                                                       /*zones=*/5);
  }
  IFLOW_CHECK_MSG(false, "unknown algorithm");
}

opt::OptimizeResult Middleware::deploy(const query::Query& q) {
  last_admission_ = AdmissionVerdict{};
  opt::OptimizeResult res;
  // Per-tenant query-count quota gates before any planning work.
  last_admission_ = admission_.precheck(q.tenant, ledger_);
  if (last_admission_.decision == AdmissionDecision::kReject) {
    res.feasible = false;
    return res;
  }
  if (!endpoints_healthy(q)) {
    suspended_.push_back(SuspendedQuery{q, 0.0, 0});
    ledger_.count_query(q.tenant, +1);
    res.feasible = false;
    return res;
  }
  {
    auto optimizer = make_optimizer();
    res = optimizer->optimize(q);
  }
  if (!res.feasible || !std::isfinite(res.actual_cost)) {
    suspended_.push_back(SuspendedQuery{q, 0.0, 0});
    ledger_.count_query(q.tenant, +1);
    res.feasible = false;
    return res;
  }
  const AdmissionConfig& cfg = admission_.config();
  const bool priced = cfg.node_capacity > 0.0 ||
                      cfg.link_utilization_cap > 0.0 ||
                      !admission_.quotas().empty();
  if (priced) {
    query::RateModel rates(*catalog_, q);
    DeploymentFootprint fp = footprint(res.deployment, rates, *routing_,
                                       *net_);
    last_admission_ = admission_.price(fp, q.tenant, ledger_, *net_,
                                       /*degraded=*/false);
    if (last_admission_.decision == AdmissionDecision::kReject &&
        !last_admission_.saturated_nodes.empty()) {
      // Capacity rejection: one degraded attempt planning AROUND the
      // saturated hosts into the remaining headroom.
      admission_excluded_ = last_admission_.saturated_nodes;
      opt::OptimizeResult degraded;
      {
        auto optimizer = make_optimizer();
        degraded = optimizer->optimize(q);
      }
      admission_excluded_.clear();
      if (degraded.feasible && std::isfinite(degraded.actual_cost)) {
        fp = footprint(degraded.deployment, rates, *routing_, *net_);
        const AdmissionVerdict second =
            admission_.price(fp, q.tenant, ledger_, *net_, /*degraded=*/true);
        if (second.decision != AdmissionDecision::kReject) {
          last_admission_ = second;
          res = std::move(degraded);
        }
      }
    }
    if (last_admission_.decision == AdmissionDecision::kReject) {
      // Rejected — not parked: a rejection is a priced policy answer, not
      // a transient fault, and retrying it via the resume queue would
      // amount to quota evasion.
      res.feasible = false;
      return res;
    }
  }
  query::RateModel rates(*catalog_, q);
  advert::advertise_deployment(registry_, res.deployment, rates);
  active_.push_back(Active{q, res.deployment, res.actual_cost, {}});
  ledger_add(active_.back());
  ledger_.count_query(q.tenant, +1);
  // A new provider changes the reuse landscape for its stream neighborhood.
  mark_dirty_overlap(q);
  return res;
}

bool Middleware::undeploy(query::QueryId id,
                          std::vector<Redeployment>* repairs) {
  for (std::size_t i = 0; i < suspended_.size(); ++i) {
    if (suspended_[i].q.id != id) continue;
    ledger_.count_query(suspended_[i].q.tenant, -1);
    suspended_.erase(suspended_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].q.id != id) continue;
    // Consumers transitively drawing on this provider's operators must be
    // repaired after the teardown — reconcile() migrates or suspends them,
    // never leaves them ungrounded. Snapshot the set first: it also seeds
    // the dirty region. A departure removes reuse options but never
    // creates them, so non-dependents stay clean.
    const std::vector<bool> dep = transitive_dependents(active_[i]);
    for (std::size_t j = 0; j < active_.size(); ++j) {
      if (dep[j] && j != i) mark_dirty(active_[j].q.id);
    }
    ledger_remove(active_[i]);
    ledger_.count_query(active_[i].q.tenant, -1);
    registry_.remove_origin(id);
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    const std::vector<Redeployment> out = reconcile(false);
    if (repairs != nullptr) {
      repairs->insert(repairs->end(), out.begin(), out.end());
    }
    debug_check_warm_state();
    return true;
  }
  return false;  // unknown or already undeployed: clean error
}

void Middleware::set_link_cost(net::NodeId a, net::NodeId b,
                               double cost_per_byte) {
  net_->set_link_cost(a, b, cost_per_byte);
  rebuild_views();
}

void Middleware::set_link_loss(net::NodeId a, net::NodeId b, double loss) {
  net_->set_link_loss(a, b, loss);
  // Loss does not change costs or reachability: sync() recognises the
  // quality-only batch and just advances the tables' version stamp. The
  // routing object — and therefore the hierarchy's snapshot pointer — is
  // untouched, so no hierarchy refresh is needed either.
  rebuild_routing();
}

void Middleware::set_link_jitter(net::NodeId a, net::NodeId b,
                                 double jitter_ms) {
  net_->set_link_jitter(a, b, jitter_ms);
  rebuild_routing();
}

void Middleware::degrade_link(net::NodeId a, net::NodeId b,
                              const net::Degradation& d) {
  net_->degrade_link(a, b, d);
  // Quality-only, like loss/jitter: sync() just advances the version stamp.
  rebuild_routing();
}

void Middleware::degrade_node(net::NodeId n, const net::Degradation& d) {
  net_->degrade_node(n, d);
  rebuild_routing();
}

void Middleware::set_health_penalty(std::vector<double> penalty) {
  if (!penalty.empty()) {
    IFLOW_CHECK_MSG(penalty.size() == net_->node_count(),
                    "penalty vector must cover every node");
    for (double p : penalty) {
      IFLOW_CHECK_MSG(p >= 1.0, "health penalty must be >= 1");
    }
  }
  health_penalty_ = std::move(penalty);
}

void Middleware::set_stream_rate(query::StreamId stream, double tuple_rate) {
  // Retract affected actives at the OLD rates (their recorded footprints
  // are exact), move the catalog, then re-price and re-advertise at the
  // new rates — the ledger and the warm registry track live volumes the
  // way the old full recomputes did.
  std::vector<std::size_t> affected;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const std::vector<query::StreamId>& src = active_[i].q.sources;
    if (std::find(src.begin(), src.end(), stream) != src.end()) {
      affected.push_back(i);
    }
  }
  for (std::size_t i : affected) ledger_remove(active_[i]);
  catalog_->set_tuple_rate(stream, tuple_rate);
  for (std::size_t i : affected) {
    Active& a = active_[i];
    ledger_add(a);
    registry_.remove_origin(a.q.id);
    query::RateModel rates(*catalog_, a.q);
    advert::advertise_deployment(registry_, a.deployment, rates);
    mark_dirty(a.q.id);
  }
}

void Middleware::refresh_registry() {
  registry_.clear();
  for (const Active& a : active_) {
    query::RateModel rates(*catalog_, a.q);
    advert::advertise_deployment(registry_, a.deployment, rates);
  }
}

void Middleware::resume_pass(std::vector<Redeployment>& out) {
  for (std::size_t i = 0; i < suspended_.size();) {
    SuspendedQuery& s = suspended_[i];
    if (s.attempts >= max_resume_attempts_ || !endpoints_healthy(s.q)) {
      ++i;
      continue;
    }
    if (s.skip > 0) {
      // Exponential backoff: sit out this pass instead of burning a
      // failed replan on a world that has not changed (restores clear
      // the counter, so recovery still resumes immediately).
      --s.skip;
      ++i;
      continue;
    }
    auto optimizer = make_optimizer();
    const opt::OptimizeResult res = optimizer->optimize(s.q);
    // A resumed plan on an excluded host (the restricted search's
    // unrestricted fallback) counts as a failed attempt: staying parked
    // beats resuming onto a host the planner must avoid.
    if (!res.feasible || !std::isfinite(res.actual_cost) ||
        deployment_on_excluded(res.deployment)) {
      ++s.attempts;
      ++resume_failures_total_;
      // After the k-th failure, skip the next 2^k - 1 eligible passes plus
      // a seeded jitter of up to 2^min(k, 8) more, so queries suspended by
      // the same episode retry across different settle rounds instead of
      // stampeding the planner together. Deterministic (the jitter stream
      // is seeded), and the attempt budget is untouched.
      s.skip = (1 << std::min(s.attempts, 16)) - 1 +
               static_cast<int>(
                   backoff_prng_.index(1u << std::min(s.attempts, 8)));
      ++i;
      continue;
    }
    Redeployment r;
    r.query = s.q.id;
    r.planned_cost = s.last_planned_cost;
    r.drifted_cost = kInf;  // the query was down, delivering nothing
    r.adapted_cost = res.actual_cost;
    r.outcome = Outcome::kResumed;
    out.push_back(r);
    active_.push_back(
        Active{std::move(s.q), res.deployment, res.actual_cost, {}});
    query::RateModel rates(*catalog_, active_.back().q);
    advert::advertise_deployment(registry_, active_.back().deployment, rates);
    ledger_add(active_.back());
    mark_dirty_overlap(active_.back().q);
    // Resume-from-suspension: a cold start by construction — whatever state
    // the old placement had died with the suspension.
    record_migration(active_.back().q.id, query::Deployment{},
                     active_.back().deployment, /*warm=*/false);
    suspended_.erase(suspended_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

std::vector<Redeployment> Middleware::reconcile(bool try_resume) {
  std::vector<Redeployment> out;
  // Fixpoint sweep: migrating (or suspending) one active can strand the
  // derived units of another that reuses its operators, so keep sweeping
  // until a pass changes nothing. Each pass migrates or suspends at least
  // one query, so active_.size() + 1 rounds always suffice.
  for (std::size_t round = 0; round <= active_.size() + 1; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < active_.size();) {
      Active& a = active_[i];
      const bool healthy = endpoints_healthy(a.q);
      if (healthy && deployment_intact(a)) {
        ++i;
        continue;
      }
      changed = true;
      Redeployment r;
      r.query = a.q.id;
      r.planned_cost = a.planned_cost;
      // The deployment is broken — a dead host, a severed edge or a
      // stranded reuse binding — so it is delivering nothing, whatever its
      // nominal cost would be.
      r.drifted_cost = kInf;
      opt::OptimizeResult res;
      if (healthy) res = replan(a);
      if (healthy && res.feasible && std::isfinite(res.actual_cost) &&
          !deployment_on_excluded(res.deployment)) {
        r.adapted_cost = res.actual_cost;
        r.outcome = Outcome::kMigrated;
        ledger_remove(a);
        const query::Deployment before = std::move(a.deployment);
        a.deployment = res.deployment;
        a.planned_cost = res.actual_cost;
        // Swap this query's advertisements in place; everyone else's stay
        // warm (no full registry rebuild per event). The query itself was
        // just replanned to its optimum, so only the neighborhood that can
        // see its new advertisements needs a settle visit.
        on_migrated(a, before);
        mark_dirty_overlap(a.q);
        ++i;
      } else {
        r.adapted_cost = kInf;
        r.outcome = Outcome::kSuspended;
        ledger_remove(a);
        registry_.remove_origin(a.q.id);
        suspended_.push_back(
            SuspendedQuery{std::move(a.q), a.planned_cost, 0});
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      out.push_back(r);
    }
    if (!changed) break;
  }
  if (try_resume) resume_pass(out);
  debug_check_warm_state();
  return out;
}

std::vector<Redeployment> Middleware::fail_node(net::NodeId n) {
  IFLOW_CHECK(n < net_->node_count());
  IFLOW_CHECK_MSG(net_->node_alive(n),
                  "node " << n << " is crashed, not processing-failed");
  IFLOW_CHECK_MSG(std::find(failed_nodes_.begin(), failed_nodes_.end(), n) ==
                      failed_nodes_.end(),
                  "node " << n << " already failed");
  failed_nodes_.push_back(n);
  if (hierarchy_->contains(n)) hierarchy_->remove_node(n, *routing_);
  return reconcile(false);
}

std::vector<Redeployment> Middleware::crash_node(net::NodeId n) {
  IFLOW_CHECK(n < net_->node_count());
  IFLOW_CHECK_MSG(std::find(failed_nodes_.begin(), failed_nodes_.end(), n) ==
                      failed_nodes_.end(),
                  "node " << n << " is processing-failed; restore it first");
  net_->crash_node(n);  // checks it was alive
  rebuild_routing();
  if (hierarchy_->contains(n)) {
    hierarchy_->remove_node(n, *routing_);
  } else {
    hierarchy_->refresh(*routing_);
  }
  return reconcile(false);
}

std::vector<Redeployment> Middleware::restore_node(net::NodeId n) {
  IFLOW_CHECK(n < net_->node_count());
  const auto it = std::find(failed_nodes_.begin(), failed_nodes_.end(), n);
  const bool was_failed = it != failed_nodes_.end();
  const bool was_crashed = !net_->node_alive(n);
  IFLOW_CHECK_MSG(was_failed || was_crashed,
                  "node " << n << " is neither failed nor crashed");
  if (was_failed) failed_nodes_.erase(it);
  if (was_crashed) {
    net_->restore_node(n);
    rebuild_routing();
    hierarchy_->refresh(*routing_);
  }
  if (!hierarchy_->contains(n)) {
    Prng fork = Prng(seed_).fork(net_->version());
    hierarchy_->add_node(n, *routing_, fork);
  }
  // Recovery resets the retry budget: everything suspended gets a fresh
  // chance now that the world improved (backoff clears with it).
  for (SuspendedQuery& s : suspended_) {
    s.attempts = 0;
    s.skip = 0;
  }
  return reconcile(true);
}

std::vector<Redeployment> Middleware::fail_link(net::NodeId a, net::NodeId b) {
  net_->fail_link(a, b);
  rebuild_routing();
  hierarchy_->refresh(*routing_);
  return reconcile(false);
}

std::vector<Redeployment> Middleware::restore_link(net::NodeId a,
                                                   net::NodeId b) {
  net_->restore_link(a, b);
  rebuild_routing();
  hierarchy_->refresh(*routing_);
  for (SuspendedQuery& s : suspended_) {
    s.attempts = 0;
    s.skip = 0;
  }
  return reconcile(true);
}

void Middleware::set_max_resume_attempts(int attempts) {
  IFLOW_CHECK(attempts >= 1);
  max_resume_attempts_ = attempts;
}

std::vector<net::NodeId> Middleware::excluded_hosts() const {
  std::vector<net::NodeId> out;
  for (net::NodeId n = 0; n < net_->node_count(); ++n) {
    if (host_down(n) ||
        std::find(overloaded_nodes_.begin(), overloaded_nodes_.end(), n) !=
            overloaded_nodes_.end() ||
        std::find(quarantined_nodes_.begin(), quarantined_nodes_.end(), n) !=
            quarantined_nodes_.end()) {
      out.push_back(n);
    }
  }
  return out;
}

std::vector<Redeployment> Middleware::quarantine_node(net::NodeId n) {
  IFLOW_CHECK(n < net_->node_count());
  std::vector<Redeployment> out;
  if (std::find(quarantined_nodes_.begin(), quarantined_nodes_.end(), n) !=
      quarantined_nodes_.end()) {
    return out;  // already quarantined
  }
  quarantined_nodes_.push_back(n);
  // Hosting-only exclusion, like a load-shed node: the element keeps
  // forwarding, sourcing and sinking — it is sick, not dead. Migrate every
  // active hosting operators there; a query that cannot vacate (replan
  // infeasible, or the restricted fallback placed back on the sick node) is
  // suspended rather than left draining tuples into the degradation — it
  // retries when release_quarantine resets the attempt budget.
  for (std::size_t i = 0; i < active_.size();) {
    Active& a = active_[i];
    bool hosted = false;
    for (const query::DeployedOp& op : a.deployment.ops) {
      hosted |= (op.node == n);
    }
    // Derived units bound at the node are subscriptions to an operator
    // executing there; they must vacate with it.
    for (const query::LeafUnit& u : a.deployment.units) {
      hosted |= (u.derived && u.location == n);
    }
    if (!hosted) {
      ++i;
      continue;
    }
    const opt::OptimizeResult res = replan(a);
    Redeployment r;
    r.query = a.q.id;
    r.planned_cost = a.planned_cost;
    query::RateModel rates(*catalog_, a.q);
    r.drifted_cost = query::deployment_cost(a.deployment, rates, *routing_);
    // deployment_on_excluded subsumes the vacated node (n is quarantined
    // already) and catches the fallback landing on *another* excluded host.
    if (res.feasible && std::isfinite(res.actual_cost) &&
        !deployment_on_excluded(res.deployment)) {
      r.adapted_cost = res.actual_cost;
      r.outcome = Outcome::kMigrated;
      ledger_remove(a);
      const query::Deployment before = std::move(a.deployment);
      a.deployment = res.deployment;
      a.planned_cost = res.actual_cost;
      on_migrated(a, before);
      mark_dirty_overlap(a.q);
      out.push_back(r);
      ++i;
    } else {
      r.adapted_cost = kInf;
      r.outcome = Outcome::kSuspended;
      out.push_back(r);
      ledger_remove(a);
      registry_.remove_origin(a.q.id);
      suspended_.push_back(SuspendedQuery{std::move(a.q), a.planned_cost,
                                          max_resume_attempts_});
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  // Migrations can strand derived units of queries that reused the moved
  // operators (same tail as rebalance_load); repair before returning.
  const std::vector<Redeployment> repaired = reconcile(false);
  out.insert(out.end(), repaired.begin(), repaired.end());
  return out;
}

std::vector<Redeployment> Middleware::release_quarantine(net::NodeId n) {
  std::vector<Redeployment> out;
  const auto it =
      std::find(quarantined_nodes_.begin(), quarantined_nodes_.end(), n);
  if (it == quarantined_nodes_.end()) return out;  // not quarantined
  quarantined_nodes_.erase(it);
  // The node is placeable again: reset attempt budgets (the world improved,
  // same as a restore) and retry whatever is parked. Actives drift back
  // through the normal adapt()/settle() machinery when beneficial.
  for (SuspendedQuery& s : suspended_) {
    s.attempts = 0;
    s.skip = 0;
  }
  resume_pass(out);
  debug_check_warm_state();
  return out;
}

std::vector<std::pair<query::QueryId, DeliveryStats>>
Middleware::collect_delivery_stats(const Simulation& sim) const {
  std::vector<std::pair<query::QueryId, DeliveryStats>> out;
  out.reserve(active_.size());
  for (const Active& a : active_) {
    out.emplace_back(a.q.id, sim.delivery_stats(a.q.id));
  }
  return out;
}

std::vector<Middleware::ActiveView> Middleware::active_views() const {
  std::vector<ActiveView> out;
  out.reserve(active_.size());
  for (const Active& a : active_) {
    out.push_back(ActiveView{&a.q, &a.deployment, a.planned_cost});
  }
  return out;
}

void Middleware::set_node_capacity(double max_input_bytes_per_s) {
  IFLOW_CHECK(max_input_bytes_per_s >= 0.0);
  node_capacity_ = max_input_bytes_per_s;
  // One knob: the admission controller prices against the same budget the
  // rebalancer sheds against.
  AdmissionConfig cfg = admission_.config();
  cfg.node_capacity = max_input_bytes_per_s;
  admission_.set_config(cfg);
}

void Middleware::set_admission_config(const AdmissionConfig& cfg) {
  IFLOW_CHECK(cfg.node_capacity >= 0.0);
  admission_.set_config(cfg);
  node_capacity_ = cfg.node_capacity;
}

void Middleware::set_tenant_quota(std::uint32_t tenant,
                                  const TenantQuota& quota) {
  admission_.set_quota(tenant, quota);
}

std::vector<double> Middleware::node_loads() const {
#ifndef NDEBUG
  // The incremental ledger must agree with a from-scratch recompute.
  const std::vector<double> scratch = node_loads_recomputed();
  const std::vector<double>& inc = ledger_.node_load();
  IFLOW_CHECK(inc.size() == scratch.size());
  for (std::size_t n = 0; n < inc.size(); ++n) {
    const double tol = 1e-6 * (1.0 + std::abs(scratch[n]));
    IFLOW_CHECK_MSG(std::abs(inc[n] - scratch[n]) <= tol,
                    "incremental load drifted on node " << n << ": "
                    << inc[n] << " vs " << scratch[n]);
  }
#endif
  return ledger_.node_load();
}

std::vector<double> Middleware::node_loads_recomputed() const {
  std::vector<double> load(net_->node_count(), 0.0);
  for (const Active& a : active_) {
    const query::Deployment& d = a.deployment;
    // Deployed operators keep carrying the current stream volumes (the
    // data conditions may have moved since deployment, see
    // set_stream_rate), so monitored load re-prices every input edge
    // against the live RateModel rather than the plan-time snapshot
    // recorded in the deployment. A rate spike therefore shows up as
    // overload immediately, before any replan refreshes the records.
    const query::RateModel rates(*catalog_, a.q);
    for (const query::DeployedOp& op : d.ops) {
      for (int child : {op.left, op.right}) {
        const query::Mask m =
            query::child_is_unit(child)
                ? d.units[static_cast<std::size_t>(
                              query::child_unit_index(child))]
                      .mask
                : d.ops[static_cast<std::size_t>(child)].mask;
        load[op.node] += rates.bytes_rate(m);
      }
    }
  }
  return load;
}

std::vector<Redeployment> Middleware::rebalance_load() {
  std::vector<Redeployment> redeployed;
  if (node_capacity_ <= 0.0) return redeployed;
  // Worst case every node needs a shed round AND a later anchored-suspend
  // round (a shed node is only suspendable one round after it was shed, and
  // with every node excluded replans fall back to unrestricted placement,
  // bouncing the stuck load between already-shed hosts). One extra round
  // lets the loop observe quiescence.
  const std::size_t max_rounds = 2 * net_->node_count() + 1;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const std::vector<double> load = node_loads();
    net::NodeId worst = net::kInvalidNode;
    for (net::NodeId n = 0; n < net_->node_count(); ++n) {
      if (load[n] > node_capacity_ &&
          (worst == net::kInvalidNode || load[n] > load[worst])) {
        worst = n;
      }
    }
    if (worst == net::kInvalidNode) break;
    if (std::find(overloaded_nodes_.begin(), overloaded_nodes_.end(),
                  worst) != overloaded_nodes_.end()) {
      // Already shed yet still overloaded: whatever sits here cannot move.
      // If the stuck load belongs to queries anchored to this node — their
      // own source or sink lives here, so no replan can ever vacate it —
      // suspend those queries (load shedding at query granularity) instead
      // of giving up with the node still drowning. They only retry after a
      // restore resets the attempt budget.
      bool suspended_any = false;
      for (std::size_t i = 0; i < active_.size();) {
        Active& a = active_[i];
        bool hosted = false;
        for (const query::DeployedOp& op : a.deployment.ops) {
          hosted |= (op.node == worst);
        }
        bool anchored = (a.q.sink == worst);
        for (query::StreamId s : a.q.sources) {
          anchored |= (catalog_->stream(s).source == worst);
        }
        if (!hosted || !anchored) {
          ++i;
          continue;
        }
        Redeployment r;
        r.query = a.q.id;
        r.planned_cost = a.planned_cost;
        query::RateModel rates(*catalog_, a.q);
        r.drifted_cost =
            query::deployment_cost(a.deployment, rates, *routing_);
        r.adapted_cost = kInf;
        r.outcome = Outcome::kSuspended;
        redeployed.push_back(r);
        ledger_remove(a);
        registry_.remove_origin(a.q.id);
        suspended_.push_back(SuspendedQuery{std::move(a.q), a.planned_cost,
                                            max_resume_attempts_});
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
        suspended_any = true;
      }
      if (!suspended_any) {
        break;  // already shed and its remaining load cannot move
      }
      continue;
    }
    overloaded_nodes_.push_back(worst);
    for (Active& a : active_) {
      bool hosted = false;
      for (const query::DeployedOp& op : a.deployment.ops) {
        hosted |= (op.node == worst);
      }
      if (!hosted) continue;
      const opt::OptimizeResult res = replan(a);
      if (!res.feasible) continue;  // nowhere better to move right now
      Redeployment r;
      r.query = a.q.id;
      r.planned_cost = a.planned_cost;
      query::RateModel rates(*catalog_, a.q);
      r.drifted_cost = query::deployment_cost(a.deployment, rates, *routing_);
      r.adapted_cost = res.actual_cost;
      ledger_remove(a);
      const query::Deployment before = std::move(a.deployment);
      a.deployment = res.deployment;
      a.planned_cost = res.actual_cost;
      on_migrated(a, before);
      mark_dirty_overlap(a.q);
      redeployed.push_back(r);
    }
  }
  // Migrations (and overload suspensions) can strand derived units of
  // queries that reused the moved operators; repair before returning.
  const std::vector<Redeployment> repaired = reconcile(false);
  redeployed.insert(redeployed.end(), repaired.begin(), repaired.end());
  return redeployed;
}

std::vector<Redeployment> Middleware::reoptimize(int max_rounds) {
  IFLOW_CHECK(max_rounds >= 1);
  // Incremental hierarchy repair is built for fast per-event reaction, but
  // a long churn episode degrades the partition quality (each removal and
  // greedy re-join moves the clustering further from what a fresh
  // k-medoids pass would produce), which in turn degrades every
  // hierarchical planner's scopes. The settle pass can afford to
  // re-cluster from scratch before replanning.
  rebuild_views();
  std::vector<Redeployment> redeployed;
  for (int round = 0; round < max_rounds; ++round) {
    bool moved = false;
    for (Active& a : active_) {
      query::RateModel rates(*catalog_, a.q);
      const double current =
          query::deployment_cost(a.deployment, rates, *routing_);
      const opt::OptimizeResult res = replan(a);
      if (!res.feasible || !std::isfinite(res.actual_cost)) continue;
      // Strict relative improvement only, so the pass terminates instead
      // of shuffling between cost-equal placements.
      if (res.actual_cost >= current * (1.0 - 1e-9)) continue;
      Redeployment r;
      r.query = a.q.id;
      r.planned_cost = a.planned_cost;
      r.drifted_cost = current;
      r.adapted_cost = res.actual_cost;
      r.outcome = Outcome::kMigrated;
      ledger_remove(a);
      const query::Deployment before = std::move(a.deployment);
      a.deployment = res.deployment;
      a.planned_cost = res.actual_cost;
      // The next replans must see the moved operators (warm swap).
      on_migrated(a, before);
      redeployed.push_back(r);
      moved = true;
    }
    if (!moved) break;
  }

  // Per-query replanning moves one deployment at a time, so a reuse chain
  // the staggered recovery never formed — a provider/consumer pair that is
  // only profitable if both move — is a local minimum it cannot escape.
  // Build a full joint re-deployment (every active planned afresh in
  // query-id order with advertisements accumulating, exactly like an
  // initial deployment sequence) and adopt it when strictly cheaper.
  std::vector<std::size_t> order(active_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return active_[a].q.id < active_[b].q.id;
  });
  advert::Registry saved = std::move(registry_);
  registry_ = advert::Registry{};
  std::vector<query::Deployment> cand(active_.size());
  std::vector<double> cand_cost(active_.size(), kInf);
  bool cand_feasible = true;
  for (std::size_t i : order) {
    auto optimizer = make_optimizer();
    opt::OptimizeResult res = optimizer->optimize(active_[i].q);
    if (!res.feasible || !std::isfinite(res.actual_cost)) {
      cand_feasible = false;
      break;
    }
    query::RateModel rates(*catalog_, active_[i].q);
    advert::advertise_deployment(registry_, res.deployment, rates);
    cand[i] = std::move(res.deployment);
    cand_cost[i] = res.actual_cost;
  }
  registry_ = std::move(saved);
  if (cand_feasible && !active_.empty()) {
    double cand_total = 0.0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      query::RateModel rates(*catalog_, active_[i].q);
      cand_total += query::deployment_cost(cand[i], rates, *routing_);
    }
    if (cand_total < total_current_cost() * (1.0 - 1e-9)) {
      for (std::size_t i = 0; i < active_.size(); ++i) {
        Active& a = active_[i];
        query::RateModel rates(*catalog_, a.q);
        Redeployment r;
        r.query = a.q.id;
        r.planned_cost = a.planned_cost;
        r.drifted_cost = query::deployment_cost(a.deployment, rates, *routing_);
        r.adapted_cost = cand_cost[i];
        r.outcome = Outcome::kMigrated;
        ledger_remove(a);
        const query::Deployment before = std::move(a.deployment);
        a.deployment = std::move(cand[i]);
        a.planned_cost = cand_cost[i];
        ledger_add(a);
        record_migration(a.q.id, before, a.deployment, /*warm=*/true);
        redeployed.push_back(r);
      }
      // Joint adoption replaced every deployment at once; this is the one
      // place a full registry rebuild is the natural operation.
      refresh_registry();
    }
  }
  // Single-query moves can strand reuse consumers; repair at a fixpoint.
  const std::vector<Redeployment> repaired = reconcile(false);
  redeployed.insert(redeployed.end(), repaired.begin(), repaired.end());
  // The full pass subsumes any pending incremental settle.
  dirty_.clear();
  return redeployed;
}

std::vector<Redeployment> Middleware::settle(int max_rounds) {
  IFLOW_CHECK(max_rounds >= 1);
  settle_stats_ = SettleStats{};
  settle_stats_.dirty = dirty_.size();
  std::vector<Redeployment> redeployed;
  if (dirty_.empty()) return redeployed;
  for (int round = 0; round < max_rounds; ++round) {
    // Work the current dirty set in query-id order (dirty_ is sorted);
    // adopting a move re-dirties its reuse neighborhood for the next
    // round. Everything else — hierarchy, registry, undisturbed plans —
    // stays warm, which is the whole point versus reoptimize().
    const std::vector<query::QueryId> work = std::move(dirty_);
    dirty_.clear();
    bool moved_any = false;
    for (query::QueryId id : work) {
      const auto it =
          std::find_if(active_.begin(), active_.end(),
                       [&](const Active& a) { return a.q.id == id; });
      if (it == active_.end()) continue;  // left the system meanwhile
      Active& a = *it;
      query::RateModel rates(*catalog_, a.q);
      const double current =
          query::deployment_cost(a.deployment, rates, *routing_);
      ++settle_stats_.replanned;
      const opt::OptimizeResult res = replan(a);
      if (!res.feasible || !std::isfinite(res.actual_cost)) continue;
      // Same strict-improvement rule as reoptimize()'s per-query rounds.
      if (res.actual_cost >= current * (1.0 - 1e-9)) continue;
      Redeployment r;
      r.query = a.q.id;
      r.planned_cost = a.planned_cost;
      r.drifted_cost = current;
      r.adapted_cost = res.actual_cost;
      r.outcome = Outcome::kMigrated;
      ledger_remove(a);
      const query::Deployment before = std::move(a.deployment);
      a.deployment = res.deployment;
      a.planned_cost = res.actual_cost;
      on_migrated(a, before);
      mark_dirty_overlap(a.q);
      redeployed.push_back(r);
      moved_any = true;
      ++settle_stats_.moved;
    }
    if (!moved_any) break;
  }
  dirty_.clear();
  if (!redeployed.empty()) {
    // Moves can strand reuse consumers exactly like adapt()'s migrations.
    const std::vector<Redeployment> repaired = reconcile(false);
    redeployed.insert(redeployed.end(), repaired.begin(), repaired.end());
  }
  debug_check_warm_state();
  return redeployed;
}

double Middleware::total_current_cost() const {
  double total = 0.0;
  for (const Active& a : active_) {
    query::RateModel rates(*catalog_, a.q);
    total += query::deployment_cost(a.deployment, rates, *routing_);
  }
  return total;
}

std::vector<Redeployment> Middleware::adapt() {
  std::vector<Redeployment> redeployed;
  for (Active& a : active_) {
    query::RateModel current_rates(*catalog_, a.q);
    const double current =
        query::deployment_cost(a.deployment, current_rates, *routing_);
    if (current <= a.planned_cost * drift_threshold_) continue;

    const opt::OptimizeResult res = replan(a);
    if (!res.feasible || !std::isfinite(res.actual_cost)) continue;

    Redeployment r;
    r.query = a.q.id;
    r.planned_cost = a.planned_cost;
    r.drifted_cost = current;
    r.adapted_cost = res.actual_cost;
    // Only migrate when re-optimization actually helps.
    if (res.actual_cost < current) {
      r.outcome = Outcome::kMigrated;
      ledger_remove(a);
      const query::Deployment before = std::move(a.deployment);
      a.deployment = res.deployment;
      a.planned_cost = res.actual_cost;
      on_migrated(a, before);
      mark_dirty_overlap(a.q);
    } else {
      r.outcome = Outcome::kAccepted;
      r.adapted_cost = current;
      a.planned_cost = current;  // accept the new normal
    }
    redeployed.push_back(r);
  }
  if (!redeployed.empty()) {
    // A migration can strand the derived units of a query that reused the
    // moved operators; repair before resuming (advertisements were swapped
    // warm as each move was adopted).
    const std::vector<Redeployment> repaired = reconcile(false);
    redeployed.insert(redeployed.end(), repaired.begin(), repaired.end());
  }
  // The retry queue rides along with every adapt sweep.
  resume_pass(redeployed);
  return redeployed;
}

}  // namespace iflow::engine
