#include "engine/middleware.h"

#include <algorithm>

#include "query/rates.h"

namespace iflow::engine {

Middleware::Middleware(net::Network& net, query::Catalog& catalog,
                       int max_cs, Algorithm algorithm, std::uint64_t seed,
                       double drift_threshold)
    : net_(&net), catalog_(&catalog), max_cs_(max_cs), algorithm_(algorithm),
      prng_(seed), drift_threshold_(drift_threshold) {
  IFLOW_CHECK(drift_threshold > 1.0);
  rebuild_views();
}

void Middleware::rebuild_views() {
  routing_ = std::make_unique<net::RoutingTables>(
      net::RoutingTables::build(*net_));
  Prng fork = prng_.fork(net_->version());
  hierarchy_ = std::make_unique<cluster::Hierarchy>(
      cluster::Hierarchy::build(*net_, *routing_, max_cs_, fork));
}

opt::OptimizerEnv Middleware::env() {
  opt::OptimizerEnv e;
  e.catalog = catalog_;
  e.network = net_;
  e.routing = routing_.get();
  e.hierarchy = hierarchy_.get();
  e.registry = &registry_;
  e.reuse = true;
  if (!failed_nodes_.empty() || !overloaded_nodes_.empty()) {
    const auto excluded = [this](net::NodeId n) {
      return std::find(failed_nodes_.begin(), failed_nodes_.end(), n) !=
                 failed_nodes_.end() ||
             std::find(overloaded_nodes_.begin(), overloaded_nodes_.end(),
                       n) != overloaded_nodes_.end();
    };
    for (net::NodeId n = 0; n < net_->node_count(); ++n) {
      if (!excluded(n)) e.processing_nodes.push_back(n);
    }
  }
  e.workspace = &workspace_;
  return e;
}

opt::OptimizeResult Middleware::replan(const Active& a) {
  // Plan against a registry of everyone else's operators: this query's own
  // stale advertisements must not be reused.
  advert::Registry fresh;
  for (const Active& other : active_) {
    if (other.q.id == a.q.id) continue;
    query::RateModel rates(*catalog_, other.q);
    advert::advertise_deployment(fresh, other.deployment, rates);
  }
  if (!failed_nodes_.empty()) {
    fresh.remove_located([this](net::NodeId n) {
      return std::find(failed_nodes_.begin(), failed_nodes_.end(), n) !=
             failed_nodes_.end();
    });
  }
  advert::Registry saved = std::move(registry_);
  registry_ = std::move(fresh);
  auto optimizer = make_optimizer();
  opt::OptimizeResult res = optimizer->optimize(a.q);
  registry_ = std::move(saved);
  return res;
}

std::unique_ptr<opt::Optimizer> Middleware::make_optimizer() {
  switch (algorithm_) {
    case Algorithm::kTopDown:
      return std::make_unique<opt::TopDownOptimizer>(env());
    case Algorithm::kBottomUp:
      return std::make_unique<opt::BottomUpOptimizer>(env());
    case Algorithm::kExhaustive:
      return std::make_unique<opt::ExhaustiveOptimizer>(env());
  }
  IFLOW_CHECK_MSG(false, "unknown algorithm");
}

opt::OptimizeResult Middleware::deploy(const query::Query& q) {
  auto optimizer = make_optimizer();
  opt::OptimizeResult res = optimizer->optimize(q);
  IFLOW_CHECK(res.feasible);
  query::RateModel rates(*catalog_, q);
  advert::advertise_deployment(registry_, res.deployment, rates);
  active_.push_back(Active{q, res.deployment, res.actual_cost});
  return res;
}

void Middleware::set_link_cost(net::NodeId a, net::NodeId b,
                               double cost_per_byte) {
  net_->set_link_cost(a, b, cost_per_byte);
  rebuild_views();
}

void Middleware::set_stream_rate(query::StreamId stream, double tuple_rate) {
  catalog_->set_tuple_rate(stream, tuple_rate);
}

std::vector<Redeployment> Middleware::fail_node(net::NodeId n) {
  IFLOW_CHECK(n < net_->node_count());
  for (query::StreamId s = 0; s < catalog_->stream_count(); ++s) {
    IFLOW_CHECK_MSG(catalog_->stream(s).source != n,
                    "cannot fail a node hosting stream source "
                        << catalog_->stream(s).name);
  }
  for (const Active& a : active_) {
    IFLOW_CHECK_MSG(a.q.sink != n, "cannot fail the sink of an active query");
  }
  if (std::find(failed_nodes_.begin(), failed_nodes_.end(), n) ==
      failed_nodes_.end()) {
    failed_nodes_.push_back(n);
  }
  hierarchy_->remove_node(n, *routing_);

  std::vector<Redeployment> redeployed;
  for (Active& a : active_) {
    bool affected = false;
    for (const query::DeployedOp& op : a.deployment.ops) {
      affected |= (op.node == n);
    }
    for (const query::LeafUnit& u : a.deployment.units) {
      affected |= (u.derived && u.location == n);
    }
    if (!affected) continue;
    const opt::OptimizeResult res = replan(a);
    IFLOW_CHECK(res.feasible);
    Redeployment r;
    r.query = a.q.id;
    r.planned_cost = a.planned_cost;
    query::RateModel rates(*catalog_, a.q);
    r.drifted_cost = query::deployment_cost(a.deployment, rates, *routing_);
    r.adapted_cost = res.actual_cost;
    a.deployment = res.deployment;
    a.planned_cost = res.actual_cost;
    redeployed.push_back(r);
  }
  // Advertisements referencing the failed node (or moved operators) are
  // stale: rebuild from the surviving deployments.
  registry_.clear();
  for (const Active& a : active_) {
    query::RateModel rates(*catalog_, a.q);
    advert::advertise_deployment(registry_, a.deployment, rates);
  }
  return redeployed;
}

void Middleware::set_node_capacity(double max_input_bytes_per_s) {
  IFLOW_CHECK(max_input_bytes_per_s >= 0.0);
  node_capacity_ = max_input_bytes_per_s;
}

std::vector<double> Middleware::node_loads() const {
  std::vector<double> load(net_->node_count(), 0.0);
  for (const Active& a : active_) {
    const query::Deployment& d = a.deployment;
    for (const query::DeployedOp& op : d.ops) {
      for (int child : {op.left, op.right}) {
        const double rate =
            query::child_is_unit(child)
                ? d.units[static_cast<std::size_t>(
                              query::child_unit_index(child))]
                      .bytes_rate
                : d.ops[static_cast<std::size_t>(child)].out_bytes_rate;
        load[op.node] += rate;
      }
    }
  }
  return load;
}

std::vector<Redeployment> Middleware::rebalance_load() {
  std::vector<Redeployment> redeployed;
  if (node_capacity_ <= 0.0) return redeployed;
  for (std::size_t round = 0; round < net_->node_count(); ++round) {
    const std::vector<double> load = node_loads();
    net::NodeId worst = net::kInvalidNode;
    for (net::NodeId n = 0; n < net_->node_count(); ++n) {
      if (load[n] > node_capacity_ &&
          (worst == net::kInvalidNode || load[n] > load[worst])) {
        worst = n;
      }
    }
    if (worst == net::kInvalidNode) break;
    if (std::find(overloaded_nodes_.begin(), overloaded_nodes_.end(),
                  worst) != overloaded_nodes_.end()) {
      break;  // already shed and its remaining load cannot move
    }
    overloaded_nodes_.push_back(worst);
    for (Active& a : active_) {
      bool hosted = false;
      for (const query::DeployedOp& op : a.deployment.ops) {
        hosted |= (op.node == worst);
      }
      if (!hosted) continue;
      const opt::OptimizeResult res = replan(a);
      IFLOW_CHECK(res.feasible);
      Redeployment r;
      r.query = a.q.id;
      r.planned_cost = a.planned_cost;
      query::RateModel rates(*catalog_, a.q);
      r.drifted_cost = query::deployment_cost(a.deployment, rates, *routing_);
      r.adapted_cost = res.actual_cost;
      a.deployment = res.deployment;
      a.planned_cost = res.actual_cost;
      redeployed.push_back(r);
    }
    // Refresh advertisements after migrations.
    registry_.clear();
    for (const Active& a : active_) {
      query::RateModel rates(*catalog_, a.q);
      advert::advertise_deployment(registry_, a.deployment, rates);
    }
  }
  return redeployed;
}

double Middleware::total_current_cost() const {
  double total = 0.0;
  for (const Active& a : active_) {
    query::RateModel rates(*catalog_, a.q);
    total += query::deployment_cost(a.deployment, rates, *routing_);
  }
  return total;
}

std::vector<Redeployment> Middleware::adapt() {
  std::vector<Redeployment> redeployed;
  for (Active& a : active_) {
    query::RateModel current_rates(*catalog_, a.q);
    const double current =
        query::deployment_cost(a.deployment, current_rates, *routing_);
    if (current <= a.planned_cost * drift_threshold_) continue;

    const opt::OptimizeResult res = replan(a);
    IFLOW_CHECK(res.feasible);

    Redeployment r;
    r.query = a.q.id;
    r.planned_cost = a.planned_cost;
    r.drifted_cost = current;
    r.adapted_cost = res.actual_cost;
    // Only migrate when re-optimization actually helps.
    if (res.actual_cost < current) {
      a.deployment = res.deployment;
      a.planned_cost = res.actual_cost;
    } else {
      r.adapted_cost = current;
      a.planned_cost = current;  // accept the new normal
    }
    redeployed.push_back(r);
  }
  if (!redeployed.empty()) {
    // Advertisements may reference moved operators: rebuild them all.
    registry_.clear();
    for (const Active& a : active_) {
      query::RateModel rates(*catalog_, a.q);
      advert::advertise_deployment(registry_, a.deployment, rates);
    }
  }
  return redeployed;
}

}  // namespace iflow::engine
