# Empty dependencies file for advert_tests.
# This may be replaced when dependencies are built.
