file(REMOVE_RECURSE
  "CMakeFiles/advert_tests.dir/advert/registry_test.cpp.o"
  "CMakeFiles/advert_tests.dir/advert/registry_test.cpp.o.d"
  "advert_tests"
  "advert_tests.pdb"
  "advert_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advert_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
