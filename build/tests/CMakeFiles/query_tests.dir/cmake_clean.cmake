file(REMOVE_RECURSE
  "CMakeFiles/query_tests.dir/query/catalog_test.cpp.o"
  "CMakeFiles/query_tests.dir/query/catalog_test.cpp.o.d"
  "CMakeFiles/query_tests.dir/query/join_tree_test.cpp.o"
  "CMakeFiles/query_tests.dir/query/join_tree_test.cpp.o.d"
  "CMakeFiles/query_tests.dir/query/plan_test.cpp.o"
  "CMakeFiles/query_tests.dir/query/plan_test.cpp.o.d"
  "CMakeFiles/query_tests.dir/query/rates_test.cpp.o"
  "CMakeFiles/query_tests.dir/query/rates_test.cpp.o.d"
  "query_tests"
  "query_tests.pdb"
  "query_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
