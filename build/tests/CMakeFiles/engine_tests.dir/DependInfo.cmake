
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/accounting_test.cpp" "tests/CMakeFiles/engine_tests.dir/engine/accounting_test.cpp.o" "gcc" "tests/CMakeFiles/engine_tests.dir/engine/accounting_test.cpp.o.d"
  "/root/repo/tests/engine/failure_test.cpp" "tests/CMakeFiles/engine_tests.dir/engine/failure_test.cpp.o" "gcc" "tests/CMakeFiles/engine_tests.dir/engine/failure_test.cpp.o.d"
  "/root/repo/tests/engine/load_test.cpp" "tests/CMakeFiles/engine_tests.dir/engine/load_test.cpp.o" "gcc" "tests/CMakeFiles/engine_tests.dir/engine/load_test.cpp.o.d"
  "/root/repo/tests/engine/middleware_test.cpp" "tests/CMakeFiles/engine_tests.dir/engine/middleware_test.cpp.o" "gcc" "tests/CMakeFiles/engine_tests.dir/engine/middleware_test.cpp.o.d"
  "/root/repo/tests/engine/simulation_test.cpp" "tests/CMakeFiles/engine_tests.dir/engine/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/engine_tests.dir/engine/simulation_test.cpp.o.d"
  "/root/repo/tests/engine/stats_test.cpp" "tests/CMakeFiles/engine_tests.dir/engine/stats_test.cpp.o" "gcc" "tests/CMakeFiles/engine_tests.dir/engine/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
