
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/opt/aggregation_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/aggregation_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/aggregation_test.cpp.o.d"
  "/root/repo/tests/opt/consolidated_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/consolidated_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/consolidated_test.cpp.o.d"
  "/root/repo/tests/opt/cost_space_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/cost_space_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/cost_space_test.cpp.o.d"
  "/root/repo/tests/opt/env_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/env_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/env_test.cpp.o.d"
  "/root/repo/tests/opt/filters_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/filters_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/filters_test.cpp.o.d"
  "/root/repo/tests/opt/optimizer_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/optimizer_test.cpp.o.d"
  "/root/repo/tests/opt/planner_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/planner_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/planner_test.cpp.o.d"
  "/root/repo/tests/opt/property_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/property_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/property_test.cpp.o.d"
  "/root/repo/tests/opt/random_place_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/random_place_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/random_place_test.cpp.o.d"
  "/root/repo/tests/opt/static_plan_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/static_plan_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/static_plan_test.cpp.o.d"
  "/root/repo/tests/opt/view_test.cpp" "tests/CMakeFiles/opt_tests.dir/opt/view_test.cpp.o" "gcc" "tests/CMakeFiles/opt_tests.dir/opt/view_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
