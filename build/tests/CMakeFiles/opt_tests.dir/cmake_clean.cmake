file(REMOVE_RECURSE
  "CMakeFiles/opt_tests.dir/opt/aggregation_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/aggregation_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/consolidated_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/consolidated_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/cost_space_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/cost_space_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/env_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/env_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/filters_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/filters_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/optimizer_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/optimizer_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/planner_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/planner_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/property_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/property_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/random_place_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/random_place_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/static_plan_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/static_plan_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/view_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/view_test.cpp.o.d"
  "opt_tests"
  "opt_tests.pdb"
  "opt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
