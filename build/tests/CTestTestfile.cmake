# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/cluster_tests[1]_include.cmake")
include("/root/repo/build/tests/query_tests[1]_include.cmake")
include("/root/repo/build/tests/advert_tests[1]_include.cmake")
include("/root/repo/build/tests/opt_tests[1]_include.cmake")
include("/root/repo/build/tests/engine_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/sql_tests[1]_include.cmake")
