file(REMOVE_RECURSE
  "CMakeFiles/iflow_shell.dir/iflow_shell.cpp.o"
  "CMakeFiles/iflow_shell.dir/iflow_shell.cpp.o.d"
  "iflow_shell"
  "iflow_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflow_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
