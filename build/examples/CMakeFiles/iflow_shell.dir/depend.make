# Empty dependencies file for iflow_shell.
# This may be replaced when dependencies are built.
