file(REMOVE_RECURSE
  "CMakeFiles/airline_ois.dir/airline_ois.cpp.o"
  "CMakeFiles/airline_ois.dir/airline_ois.cpp.o.d"
  "airline_ois"
  "airline_ois.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airline_ois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
