file(REMOVE_RECURSE
  "CMakeFiles/adaptive_rebalance.dir/adaptive_rebalance.cpp.o"
  "CMakeFiles/adaptive_rebalance.dir/adaptive_rebalance.cpp.o.d"
  "adaptive_rebalance"
  "adaptive_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
