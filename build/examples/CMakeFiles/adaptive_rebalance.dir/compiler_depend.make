# Empty compiler generated dependencies file for adaptive_rebalance.
# This may be replaced when dependencies are built.
