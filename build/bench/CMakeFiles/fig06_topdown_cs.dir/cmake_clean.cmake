file(REMOVE_RECURSE
  "CMakeFiles/fig06_topdown_cs.dir/fig06_topdown_cs.cpp.o"
  "CMakeFiles/fig06_topdown_cs.dir/fig06_topdown_cs.cpp.o.d"
  "fig06_topdown_cs"
  "fig06_topdown_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_topdown_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
