# Empty compiler generated dependencies file for fig06_topdown_cs.
# This may be replaced when dependencies are built.
