# Empty compiler generated dependencies file for mqo_consolidated.
# This may be replaced when dependencies are built.
