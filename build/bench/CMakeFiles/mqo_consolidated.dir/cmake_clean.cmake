file(REMOVE_RECURSE
  "CMakeFiles/mqo_consolidated.dir/mqo_consolidated.cpp.o"
  "CMakeFiles/mqo_consolidated.dir/mqo_consolidated.cpp.o.d"
  "mqo_consolidated"
  "mqo_consolidated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqo_consolidated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
