file(REMOVE_RECURSE
  "CMakeFiles/fig10_deploy_time.dir/fig10_deploy_time.cpp.o"
  "CMakeFiles/fig10_deploy_time.dir/fig10_deploy_time.cpp.o.d"
  "fig10_deploy_time"
  "fig10_deploy_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_deploy_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
