file(REMOVE_RECURSE
  "CMakeFiles/fig11_emulab_cost.dir/fig11_emulab_cost.cpp.o"
  "CMakeFiles/fig11_emulab_cost.dir/fig11_emulab_cost.cpp.o.d"
  "fig11_emulab_cost"
  "fig11_emulab_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_emulab_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
