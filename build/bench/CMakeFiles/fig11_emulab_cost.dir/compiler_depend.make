# Empty compiler generated dependencies file for fig11_emulab_cost.
# This may be replaced when dependencies are built.
