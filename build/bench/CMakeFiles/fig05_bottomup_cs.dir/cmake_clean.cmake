file(REMOVE_RECURSE
  "CMakeFiles/fig05_bottomup_cs.dir/fig05_bottomup_cs.cpp.o"
  "CMakeFiles/fig05_bottomup_cs.dir/fig05_bottomup_cs.cpp.o.d"
  "fig05_bottomup_cs"
  "fig05_bottomup_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bottomup_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
