# Empty dependencies file for fig05_bottomup_cs.
# This may be replaced when dependencies are built.
