file(REMOVE_RECURSE
  "CMakeFiles/micro_optimizers.dir/micro_optimizers.cpp.o"
  "CMakeFiles/micro_optimizers.dir/micro_optimizers.cpp.o.d"
  "micro_optimizers"
  "micro_optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
