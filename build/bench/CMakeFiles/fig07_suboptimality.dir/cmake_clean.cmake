file(REMOVE_RECURSE
  "CMakeFiles/fig07_suboptimality.dir/fig07_suboptimality.cpp.o"
  "CMakeFiles/fig07_suboptimality.dir/fig07_suboptimality.cpp.o.d"
  "fig07_suboptimality"
  "fig07_suboptimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_suboptimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
