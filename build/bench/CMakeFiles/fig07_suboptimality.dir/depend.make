# Empty dependencies file for fig07_suboptimality.
# This may be replaced when dependencies are built.
