# Empty dependencies file for iflow.
# This may be replaced when dependencies are built.
