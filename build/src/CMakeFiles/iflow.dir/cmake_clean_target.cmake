file(REMOVE_RECURSE
  "libiflow.a"
)
