
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advert/registry.cpp" "src/CMakeFiles/iflow.dir/advert/registry.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/advert/registry.cpp.o.d"
  "/root/repo/src/cluster/hierarchy.cpp" "src/CMakeFiles/iflow.dir/cluster/hierarchy.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/cluster/hierarchy.cpp.o.d"
  "/root/repo/src/cluster/kmedoids.cpp" "src/CMakeFiles/iflow.dir/cluster/kmedoids.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/cluster/kmedoids.cpp.o.d"
  "/root/repo/src/cluster/theory.cpp" "src/CMakeFiles/iflow.dir/cluster/theory.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/cluster/theory.cpp.o.d"
  "/root/repo/src/engine/middleware.cpp" "src/CMakeFiles/iflow.dir/engine/middleware.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/engine/middleware.cpp.o.d"
  "/root/repo/src/engine/simulation.cpp" "src/CMakeFiles/iflow.dir/engine/simulation.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/engine/simulation.cpp.o.d"
  "/root/repo/src/net/gtitm.cpp" "src/CMakeFiles/iflow.dir/net/gtitm.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/net/gtitm.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/iflow.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/net/network.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/CMakeFiles/iflow.dir/net/routing.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/net/routing.cpp.o.d"
  "/root/repo/src/opt/bottom_up.cpp" "src/CMakeFiles/iflow.dir/opt/bottom_up.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/bottom_up.cpp.o.d"
  "/root/repo/src/opt/consolidated.cpp" "src/CMakeFiles/iflow.dir/opt/consolidated.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/consolidated.cpp.o.d"
  "/root/repo/src/opt/cost_space.cpp" "src/CMakeFiles/iflow.dir/opt/cost_space.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/cost_space.cpp.o.d"
  "/root/repo/src/opt/exhaustive.cpp" "src/CMakeFiles/iflow.dir/opt/exhaustive.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/exhaustive.cpp.o.d"
  "/root/repo/src/opt/in_network.cpp" "src/CMakeFiles/iflow.dir/opt/in_network.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/in_network.cpp.o.d"
  "/root/repo/src/opt/plan_then_deploy.cpp" "src/CMakeFiles/iflow.dir/opt/plan_then_deploy.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/plan_then_deploy.cpp.o.d"
  "/root/repo/src/opt/planner.cpp" "src/CMakeFiles/iflow.dir/opt/planner.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/planner.cpp.o.d"
  "/root/repo/src/opt/random_place.cpp" "src/CMakeFiles/iflow.dir/opt/random_place.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/random_place.cpp.o.d"
  "/root/repo/src/opt/relaxation.cpp" "src/CMakeFiles/iflow.dir/opt/relaxation.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/relaxation.cpp.o.d"
  "/root/repo/src/opt/session.cpp" "src/CMakeFiles/iflow.dir/opt/session.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/session.cpp.o.d"
  "/root/repo/src/opt/static_plan.cpp" "src/CMakeFiles/iflow.dir/opt/static_plan.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/static_plan.cpp.o.d"
  "/root/repo/src/opt/top_down.cpp" "src/CMakeFiles/iflow.dir/opt/top_down.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/top_down.cpp.o.d"
  "/root/repo/src/opt/view.cpp" "src/CMakeFiles/iflow.dir/opt/view.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/view.cpp.o.d"
  "/root/repo/src/opt/view_planner.cpp" "src/CMakeFiles/iflow.dir/opt/view_planner.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/opt/view_planner.cpp.o.d"
  "/root/repo/src/query/catalog.cpp" "src/CMakeFiles/iflow.dir/query/catalog.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/query/catalog.cpp.o.d"
  "/root/repo/src/query/join_tree.cpp" "src/CMakeFiles/iflow.dir/query/join_tree.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/query/join_tree.cpp.o.d"
  "/root/repo/src/query/plan.cpp" "src/CMakeFiles/iflow.dir/query/plan.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/query/plan.cpp.o.d"
  "/root/repo/src/query/rates.cpp" "src/CMakeFiles/iflow.dir/query/rates.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/query/rates.cpp.o.d"
  "/root/repo/src/sql/binder.cpp" "src/CMakeFiles/iflow.dir/sql/binder.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/sql/binder.cpp.o.d"
  "/root/repo/src/sql/parser.cpp" "src/CMakeFiles/iflow.dir/sql/parser.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/sql/parser.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/iflow.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/iflow.dir/workload/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
